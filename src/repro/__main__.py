"""Command-line interface: ``python -m repro``.

Subcommands:

* ``study``   — run the five measurement runs and print Table I
* ``funnel``  — run the §IV-B channel-selection funnel
* ``report``  — the full markdown replication report
* ``pixels``  — the §V-D1 tracking-pixel report
* ``graph``   — the §V-E ecosystem-graph metrics
* ``policies``— the §VII policy-pipeline summary
* ``health``  — the run-health report (faults, retries, degradation)
* ``metrics`` — the study's deterministic metrics snapshot (JSON)
* ``cache``   — inspect the analysis cache (``stats``/``clear``/``verify``)
* ``audit``   — determinism audit (``lint``/``fuzz``, see DESIGN.md §12)
* ``serve``   — the HTTP study service (``repro.service``): submit
  studies as JSON jobs, stream progress as SSE (see DESIGN.md §16)

All subcommands accept ``--seed`` (default 7), ``--scale`` (default
0.15), and ``--faults`` (default ``off``) — a fault-injection preset
(``light``/``heavy``/``chaos``) applied to the world's third-party
hosts, with the resilience layer (retries, breakers, watchdogs)
switched on.

Study-based subcommands additionally accept ``--workers N`` and
``--shards K`` (see ``repro.core.shard``): the study executes shard-
by-shard on isolated stacks, optionally across N worker processes.
The output depends only on ``(seed, scale, faults, shards)`` — never
on the worker count.  ``funnel`` always runs on the classic
sequential stack.

Analysis subcommands resolve through the content-addressed pass
registry (``repro.analysis.passes``).  ``--cache-dir PATH`` persists
pass artifacts on disk so a second invocation skips the recompute;
``--no-cache`` disables caching entirely.  Either way the printed
output is byte-identical.

All execution knobs coerce through one path —
:meth:`repro.core.options.ExecutionOptions.from_cli_args` — so the
CLI, the :class:`~repro.api.Study` facade, and the service JSON body
accept exactly the same spellings.
"""

from __future__ import annotations

import argparse

FAULT_CHOICES = ("off", "light", "heavy", "chaos")
NETSIM_CHOICES = ("off", "dsl", "fiber", "congested")
UPLINK_CHOICES = ("off", "street", "neighbourhood")
CACHE_ACTIONS = ("stats", "clear", "verify")
AUDIT_ACTIONS = ("lint", "fuzz")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Privacy from 5 PM to 6 AM' (DSN 2025): "
            "simulated HbbTV measurement study and analyses."
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument(
        "--faults",
        choices=FAULT_CHOICES,
        default="off",
        help="fault-injection preset applied to third-party hosts",
    )
    parser.add_argument(
        "--netsim",
        choices=NETSIM_CHOICES,
        default="off",
        help=(
            "network co-simulation preset: bounded per-host capacity, "
            "hour-of-day congestion, load shedding (default off = the "
            "original infinitely fast wire)"
        ),
    )
    parser.add_argument(
        "--uplink",
        choices=UPLINK_CHOICES,
        default="off",
        help=(
            "shared neighbourhood aggregation link on top of --netsim: "
            "all host queues (and, with --households, all households) "
            "compete for one bounded uplink that sheds with a "
            "depth-derived Retry-After (requires an active --netsim)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "execute the study sharded across N worker processes "
            "(output depends only on --shards, not on N)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help=(
            "partition the channel corpus into K deterministic shards "
            "(default 4 when --workers is given)"
        ),
    )
    parser.add_argument(
        "--households",
        type=int,
        default=1,
        metavar="N",
        help=(
            "simulate a fleet of N concurrent households (study/report "
            "commands; --seed doubles as the fleet seed).  audit fuzz "
            "widens its sampled axis to {1, N}"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("objects", "columnar"),
        default="objects",
        help=(
            "dataset storage layout: classic heap objects or the "
            "append-only columnar store (identical digests and "
            "analysis results; columnar uses far less memory at scale)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write the study's trace stream to PATH as canonical JSONL "
            "(deterministic: same seed/scale/faults/shards, same bytes)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "persist analysis-pass artifacts under PATH "
            "(content-addressed; safe to share across seeds/scales)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the analysis cache (results are identical)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="audit lint: exit nonzero on any unallowlisted finding",
    )
    parser.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="audit: print machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="audit: also write the JSON report to PATH",
    )
    parser.add_argument(
        "--allowlist",
        metavar="PATH",
        default=None,
        help=(
            "audit lint: allowlist file for audited exceptions "
            "(default: the packaged repro/audit/allowlist.json)"
        ),
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=3,
        metavar="N",
        help=(
            "audit fuzz: number of sampled (seed, scale, faults) points "
            "(--seed seeds the sampler)"
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8799,
        metavar="N",
        help="serve: TCP port to bind (0 = ephemeral; default 8799)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="N",
        help="serve: concurrent study executions (default 2)",
    )
    parser.add_argument(
        "command",
        choices=(
            "study",
            "funnel",
            "report",
            "pixels",
            "graph",
            "policies",
            "health",
            "metrics",
            "cache",
            "audit",
            "serve",
        ),
        help="which artifact to produce",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=CACHE_ACTIONS + AUDIT_ACTIONS,
        default=None,
        help=(
            "subaction: cache maintenance (stats/clear/verify, default "
            "stats) or determinism audit (lint/fuzz, default lint)"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.core.options import OptionsError

    arguments = _build_parser().parse_args(argv)
    if arguments.households < 1:
        print(f"--households must be >= 1, got {arguments.households}")
        return 2
    try:
        return _dispatch(arguments)
    except OptionsError as exc:
        print(exc)
        return 2


def _dispatch(arguments) -> int:
    if arguments.command == "cache":
        return _cache_command(arguments)
    if arguments.command == "audit":
        return _audit_command(arguments)
    if arguments.command == "serve":
        return _serve_command(arguments)
    if arguments.command == "funnel":
        return _funnel(arguments)
    if arguments.households > 1:
        return _fleet_command(arguments)
    return _with_study(arguments)


def _options(arguments):
    """The parsed namespace as :class:`ExecutionOptions` — the single
    coercion path shared with the facade and the service schema."""
    from repro.core.options import ExecutionOptions

    return ExecutionOptions.from_cli_args(arguments)


def _analysis_cache(arguments):
    """The cache analysis subcommands resolve against (or ``None``)."""
    return _options(arguments).resolve_cache()


def _cache_command(arguments) -> int:
    import json

    from repro.cache import AnalysisCache, clear_default_cache, default_cache

    if arguments.cache_dir is not None:
        cache = AnalysisCache(directory=arguments.cache_dir)
    else:
        cache = default_cache()
    action = arguments.action or "stats"
    if action not in CACHE_ACTIONS:
        print(f"unknown cache action {action!r} (expected {CACHE_ACTIONS})")
        return 2
    if action == "stats":
        print(json.dumps(cache.stats().as_dict(), indent=2, sort_keys=True))
        return 0
    if action == "clear":
        removed = cache.clear()
        clear_default_cache()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    issues = cache.verify()
    if issues:
        for issue in issues:
            print(issue)
        return 1
    entries = cache.stats().disk_entries
    print(f"cache verified: {entries} disk entr"
          f"{'y' if entries == 1 else 'ies'}, no issues")
    return 0


def _audit_command(arguments) -> int:
    """The determinism audit: static lint or differential fuzz."""
    import json

    action = arguments.action or "lint"
    if action not in AUDIT_ACTIONS:
        print(f"unknown audit action {action!r} (expected {AUDIT_ACTIONS})")
        return 2

    if action == "lint":
        from repro.audit import lint_package

        report = lint_package(allowlist=arguments.allowlist)
        payload = report.as_dict()
        failed = arguments.strict and not report.clean
    else:
        from repro.audit import FuzzConfig, run_fuzz

        backends = ("objects",)
        if arguments.backend != "objects":
            # `--backend columnar` widens the sampled axis rather than
            # replacing it: backend divergences are only detectable
            # against the objects twin.
            backends = ("objects", arguments.backend)
        households = (1,)
        if arguments.households > 1:
            # Like --backend, --households N widens the sampled axis
            # ({1, N}) instead of replacing it: fleet points are only
            # meaningful next to single-TV ones.
            households = (1, arguments.households)
        uplinks = ("off",)
        if arguments.uplink != "off":
            if arguments.netsim == "off":
                print("--uplink requires an active --netsim preset")
                return 2
            # Same widening convention: uplink points are only
            # meaningful next to uplink-off ones.
            uplinks = ("off", arguments.uplink)
        config = FuzzConfig(
            budget=arguments.budget,
            base_seed=arguments.seed,
            netsim=arguments.netsim,
            backends=backends,
            households=households,
            uplinks=uplinks,
        )
        report = run_fuzz(
            config, log=None if arguments.as_json else print
        )
        payload = report.as_dict()
        failed = not report.ok

    if arguments.json_out is not None:
        with open(arguments.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if arguments.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 1 if failed else 0


def _serve_command(arguments) -> int:
    """``python -m repro serve``: the HTTP study service."""
    import asyncio

    from repro.service import serve

    if arguments.service_workers < 1:
        print(
            f"--service-workers must be >= 1, got {arguments.service_workers}"
        )
        return 2

    def ready(service) -> None:
        print(f"repro service listening on {service.base_url}")
        print(
            "submit: curl -X POST -d '{\"seed\": 7, \"scale\": 0.05}' "
            f"{service.base_url}/studies"
        )

    try:
        asyncio.run(
            serve(
                host=arguments.host,
                port=arguments.port,
                max_workers=arguments.service_workers,
                cache=_analysis_cache(arguments),
                ready=ready,
            )
        )
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _funnel(arguments) -> int:
    from repro.core.config import MeasurementConfig
    from repro.simulation.study import make_context, run_filtering
    from repro.simulation.world import build_world

    world = build_world(seed=arguments.seed, scale=arguments.scale)
    opts = _options(arguments)
    context = make_context(
        world,
        MeasurementConfig(exploratory_watch_seconds=60.0),
        faults=opts.fault_plan(world),
        netsim=opts.resolved_netsim(),
    )
    report = run_filtering(context)
    _maybe_write_trace(arguments, context)
    print(f"{'Step':<24} {'Channels':>9} {'Share':>8}")
    for step, count, share in report.as_rows():
        print(f"{step:<24} {count:>9} {share:>8.1%}")
    return 0


def _maybe_write_trace(arguments, context) -> None:
    if arguments.trace is None:
        return
    from repro.obs import write_trace_jsonl

    count = write_trace_jsonl(context.trace_events, arguments.trace)
    print(f"wrote {count} trace event(s) to {arguments.trace}")


def _load_context(arguments):
    """The study context: memoized when clean and unsharded, else fresh.

    The memo holds object-backed studies only; a columnar request
    always builds fresh so the cached default study stays byte-for-
    byte what every other consumer expects.
    """
    opts = _options(arguments)
    sharded = opts.workers is not None or opts.shards is not None
    if (
        opts.faults == "off"
        and opts.netsim == "off"
        and opts.backend == "objects"
        and arguments.command != "health"
        and not sharded
    ):
        from repro.simulation.study import default_study

        return default_study(seed=arguments.seed, scale=arguments.scale)
    from repro.simulation.study import run_study
    from repro.simulation.world import build_world

    world = build_world(seed=arguments.seed, scale=arguments.scale)
    return run_study(world, faults=opts.fault_plan(world), **opts.run_kwargs())


def _fleet_command(arguments) -> int:
    """``--households N`` routing: the study/report commands at fleet
    scale.  The other study-based artifacts are single-TV by nature."""
    if arguments.command not in ("study", "report"):
        print(
            f"--households applies to the study/report commands, "
            f"not {arguments.command!r}"
        )
        return 2
    from repro.fleet import run_fleet_study

    fleet = run_fleet_study(
        fleet_seed=arguments.seed,
        n_households=arguments.households,
        scale=arguments.scale,
        options=_options(arguments),
    )

    if arguments.command == "report":
        from repro.analysis.report import generate_fleet_report

        cache = _analysis_cache(arguments)
        print(generate_fleet_report(fleet, cache=cache if cache else False))
        return 0

    print(
        f"fleet: {fleet.n_households} households, seed "
        f"{fleet.fleet_seed}, scale {fleet.world.scale}, "
        f"{fleet.n_shards} shard(s)"
    )
    print(f"{'household':<18} {'device':<22} {'habit':<28} "
          f"{'consent':<10} {'requests':>9}")
    for result in fleet.households:
        spec = result.spec
        device = f"{spec.device_info.manufacturer} {spec.device_info.model}"
        print(
            f"{spec.household_id:<18} {device:<22} "
            f"{spec.habit.name:<28} {spec.consent:<10} "
            f"{result.dataset.total_requests():>9,}"
        )
    print(f"\nfleet digest: {fleet.digest()}")
    return 0


def _resolve(arguments, context, *names):
    """Resolve analysis passes for the CLI against the selected cache."""
    from repro.analysis.passes import PassContext, resolve_passes

    ctx = PassContext.for_study(context)
    return resolve_passes(
        list(names),
        context.dataset,
        ctx,
        cache=_analysis_cache(arguments),
    )


def _with_study(arguments) -> int:
    context = _load_context(arguments)
    dataset = context.dataset
    _maybe_write_trace(arguments, context)

    if arguments.command == "metrics":
        import json

        print(json.dumps(context.metrics.snapshot(), indent=2, sort_keys=True))
        return 0

    if arguments.command == "health":
        from repro.analysis.report import format_health_table

        if context.health is None or not context.health.has_activity:
            print(
                "run healthy: no faults injected, no retries, "
                "no degraded channels (use --faults to exercise a "
                "faulty world)"
            )
            return 0
        print(format_health_table(context.health))
        return 0

    if arguments.command == "study":
        from repro.core.report import format_overview_table, overview_table

        print(format_overview_table(overview_table(dataset)))
        if context.health is not None and context.health.has_activity:
            totals = context.health.totals()
            print(
                f"\nrun health: {totals['faults']:,} faults injected, "
                f"{totals['retries']:,} retries, "
                f"{totals['degraded_channels']} degraded channel visit(s)"
            )
        return 0

    if arguments.command == "report":
        from repro.analysis.report import generate_report

        cache = _analysis_cache(arguments)
        print(generate_report(context, cache=cache if cache else False))
        return 0

    if arguments.command == "pixels":
        report = _resolve(arguments, context, "pixels")["pixels"]
        dominant, count = report.dominant_party()
        print(
            f"{report.pixel_count:,} tracking pixels "
            f"({report.traffic_share:.1%} of {report.total_flows:,} flows)"
        )
        print(
            f"{len(report.pixel_etld1s)} pixel parties on "
            f"{len(report.channels_with_pixels)} channels; "
            f"dominant: {dominant} ({count:,})"
        )
        return 0

    if arguments.command == "graph":
        report = _resolve(arguments, context, "graph")["graph"]
        print(
            f"{report.node_count} nodes / {report.edge_count} edges / "
            f"{report.component_count} component(s); "
            f"avg path {report.average_path_length:.2f}"
        )
        for domain, degree in report.top_degree_nodes:
            print(f"  {domain:<30} {degree}")
        return 0

    # policies
    policies = _resolve(arguments, context, "policies")["policies"]
    print(
        f"{policies.occurrences} policy occurrences, "
        f"{policies.distinct_count} distinct, "
        f"{policies.near_duplicate_groups} near-duplicate groups"
    )
    print(f"per run: {policies.per_run}")
    print(f"languages: {policies.per_language}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
