"""Unit tests for the observability layer (``repro.obs``).

Covers the tracer's span discipline and canonical encoding, the metric
families and their merge laws, and the shard-trace merge's permutation
invariance — the local contracts the golden-trace and differential
harnesses build on.
"""

import json
import pickle

import pytest

from repro.clock import SimClock
from repro.obs import (
    MetricsRegistry,
    Observability,
    TraceEvent,
    Tracer,
    format_metrics_table,
    merge_metrics,
    merge_shard_traces,
    metrics_digest,
    serialize_trace,
    trace_digest,
    trace_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import SHARE_BUCKETS, SIZE_BUCKETS


# -- tracer ------------------------------------------------------------------------


def test_spans_nest_and_stamp_from_the_clock():
    clock = SimClock(start=0.0)
    tracer = Tracer(clock)
    outer = tracer.begin_span("study", seed=7)
    clock.advance(10.0)
    inner = tracer.begin_span("run", run="General")
    clock.advance(5.0)
    tracer.point("request", status=200)
    tracer.end_span(inner)
    clock.advance(1.0)
    tracer.end_span(outer)

    kinds = [(e.kind, e.name) for e in tracer.events]
    assert kinds == [
        ("begin", "study"),
        ("begin", "run"),
        ("point", "request"),
        ("end", "run"),
        ("end", "study"),
    ]
    begin_run = tracer.events[1]
    assert begin_run.parent_id == outer
    assert begin_run.at == 10.0
    point = tracer.events[2]
    assert point.parent_id == inner
    assert point.at == 15.0
    assert tracer.events[-1].at == 16.0
    assert tracer.open_spans == ()


def test_end_span_enforces_stack_order():
    tracer = Tracer()
    outer = tracer.begin_span("outer")
    tracer.begin_span("inner")
    with pytest.raises(ValueError, match="innermost"):
        tracer.end_span(outer)


def test_span_context_manager_closes_on_error():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("run"):
            raise RuntimeError("boom")
    assert tracer.open_spans == ()
    assert [e.kind for e in tracer.events] == ["begin", "end"]


def test_trace_attrs_must_be_json_scalars():
    tracer = Tracer()
    with pytest.raises(TypeError, match="JSON scalar"):
        tracer.point("bad", payload=[1, 2, 3])


def test_explicit_timestamp_beats_clock():
    clock = SimClock(start=0.0)
    clock.advance(100.0)
    tracer = Tracer(clock)
    tracer.point("request", at=42.0)
    assert tracer.events[0].at == 42.0


def test_events_pickle_roundtrip():
    tracer = Tracer()
    with tracer.span("shard", index=3):
        tracer.point("request", status=200, host="a.example")
    events = tuple(tracer.events)
    assert pickle.loads(pickle.dumps(events)) == events


def test_serialization_is_canonical_and_digestable(tmp_path):
    tracer = Tracer()
    with tracer.span("study"):
        tracer.point("request", host="a.example", status=200)
    records = serialize_trace(tracer.events)
    assert records[1]["attrs"] == {"host": "a.example", "status": 200}
    jsonl = trace_to_jsonl(tracer.events)
    lines = jsonl.strip().split("\n")
    assert len(lines) == 3
    assert all(json.loads(line) for line in lines)
    # Keys sorted, separators tight: the canonical form is unique.
    assert lines[0] == json.dumps(
        json.loads(lines[0]), sort_keys=True, separators=(",", ":")
    )
    path = tmp_path / "trace.jsonl"
    assert write_trace_jsonl(tracer.events, str(path)) == 3
    assert path.read_text() == jsonl
    assert trace_digest(tracer.events) == trace_digest(tuple(tracer.events))


def test_merge_shard_traces_is_permutation_invariant():
    parts = []
    for index in range(3):
        tracer = Tracer()
        with tracer.span("shard", index=index):
            tracer.point("request", status=200)
        parts.append((index, tuple(tracer.events)))
    forward = merge_shard_traces(parts)
    backward = merge_shard_traces(list(reversed(parts)))
    assert forward == backward
    assert [e.shard for e in forward] == [0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_merge_shard_traces_rejects_duplicate_indices():
    with pytest.raises(ValueError, match="duplicate"):
        merge_shard_traces([(0, ()), (0, ())])


# -- metrics -----------------------------------------------------------------------


def test_counters_sum_and_reject_negatives():
    registry = MetricsRegistry()
    registry.inc("proxy.requests", scheme="http")
    registry.inc("proxy.requests", 2, scheme="http")
    registry.inc("proxy.requests", scheme="https")
    assert registry.counter_value("proxy.requests", scheme="http") == 3
    assert registry.counter_total("proxy.requests") == 4
    assert registry.counter_series("proxy.requests") == {
        "scheme=http": 3,
        "scheme=https": 1,
    }
    with pytest.raises(ValueError, match="only go up"):
        registry.inc("proxy.requests", -1)


def test_gauge_keeps_maximum():
    registry = MetricsRegistry()
    registry.gauge_max("jar.peak", 5.0)
    registry.gauge_max("jar.peak", 3.0)
    registry.gauge_max("jar.peak", 9.0)
    assert registry.snapshot()["gauges"]["jar.peak"][""] == 9.0


def test_histogram_buckets_and_bounds_conflict():
    registry = MetricsRegistry()
    registry.observe("bytes", 100.0, bounds=SIZE_BUCKETS)
    registry.observe("bytes", 10_000_000.0, bounds=SIZE_BUCKETS)
    data = registry.snapshot()["histograms"]["bytes"][""]
    assert data["count"] == 2
    assert data["sum"] == 10_000_100.0
    assert len(data["counts"]) == len(SIZE_BUCKETS) + 1
    assert data["counts"][-1] == 1  # the +inf bucket caught the huge value
    with pytest.raises(ValueError, match="boundaries"):
        registry.observe("bytes", 1.0, bounds=SHARE_BUCKETS)


def test_merge_is_order_independent_and_identity_preserving():
    a = MetricsRegistry()
    a.inc("flows", 3)
    a.gauge_max("peak", 2.0)
    a.observe("share", 0.5, bounds=SHARE_BUCKETS)
    b = MetricsRegistry()
    b.inc("flows", 4)
    b.gauge_max("peak", 7.0)
    b.observe("share", 0.9, bounds=SHARE_BUCKETS)

    ab = merge_metrics([a, b]).snapshot()
    ba = merge_metrics([b, a]).snapshot()
    assert ab == ba
    assert ab["counters"]["flows"][""] == 7
    assert ab["gauges"]["peak"][""] == 7.0

    with_identity = merge_metrics([MetricsRegistry(), a]).snapshot()
    assert with_identity == merge_metrics([a]).snapshot() == a.snapshot()


def test_merge_restores_integer_counters():
    parts = []
    for _ in range(3):
        registry = MetricsRegistry()
        registry.inc("flows", 2)
        parts.append(registry)
    merged = merge_metrics(parts)
    value = merged.snapshot()["counters"]["flows"][""]
    assert value == 6 and isinstance(value, int)


def test_merge_rejects_bound_disagreement():
    a = MetricsRegistry()
    a.observe("h", 1.0, bounds=SHARE_BUCKETS)
    b = MetricsRegistry()
    b.observe("h", 1.0, bounds=SIZE_BUCKETS)
    with pytest.raises(ValueError, match="boundaries differ"):
        merge_metrics([a, b])


def test_metrics_digest_and_table():
    registry = MetricsRegistry()
    registry.inc("proxy.requests", 10, scheme="http")
    registry.observe("share", 0.5, bounds=SHARE_BUCKETS)
    assert metrics_digest(registry) == metrics_digest(registry)
    other = MetricsRegistry()
    assert metrics_digest(other) != metrics_digest(registry)
    table = format_metrics_table(registry)
    assert "proxy.requests" in table
    assert "scheme=http" in table
    assert "share (hist)" in table


def test_registry_pickles_across_spawn_boundary():
    registry = MetricsRegistry()
    registry.inc("flows", 5, run="General")
    registry.observe("share", 0.75, bounds=SHARE_BUCKETS)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.snapshot() == registry.snapshot()


# -- the bundle --------------------------------------------------------------------


def test_observability_bundle_wiring():
    clock = SimClock(start=0.0)
    obs = Observability.for_clock(clock)
    clock.advance(3.0)
    obs.tracer.point("request")
    assert obs.events[0].at == 3.0
    merged = Observability.merged(obs.events, obs.metrics)
    assert merged.events == obs.events
    assert isinstance(merged.events[0], TraceEvent)
