"""Table III — filter-list coverage, tracking pixels, fingerprinting.

Paper totals: Pi-hole flags 5,355 requests (1.17% of URLs), EasyList
2,512 (0.5%), EasyPrivacy 693 (0.15%); pixels dominate (277,574
requests, 60.7% of traffic, driven by one tvping-like party); smart-TV
lists block *less* than the general Pi-hole list (Perflyst −27%,
Kamran −64%).  Shape: lists flag a tiny share everywhere; Red has the
most EasyList hits and the most fingerprinting.
"""

from benchmarks.conftest import emit
from repro.analysis.filterlists import FilterListSuite
from repro.analysis.fingerprinting import analyze_fingerprinting
from repro.analysis.pixels import analyze_pixels

_SUITE = FilterListSuite()


def _table3(dataset):
    rows = []
    for name, run in dataset.runs.items():
        coverage = _SUITE.coverage(run.flows, name)
        pixels = analyze_pixels(run.flows)
        fingerprints = analyze_fingerprinting(run.flows)
        rows.append((coverage, pixels, fingerprints))
    return rows


def test_table3_filterlists(benchmark, dataset, flows):
    rows = benchmark(_table3, dataset)

    lines = [
        f"{'Meas. Run':<10} {'Pi-hole':>8} {'EasyList':>9} {'EasyPriv.':>10} "
        f"{'Track. Pxl':>11} {'Fingerp.':>9}"
    ]
    for coverage, pixels, fingerprints in rows:
        lines.append(
            f"{coverage.run_name:<10} {coverage.on_pihole:>8} "
            f"{coverage.on_easylist:>9} {coverage.on_easyprivacy:>10} "
            f"{pixels.pixel_count:>11,} {fingerprints.related_request_count:>9}"
        )
    total = _SUITE.coverage(flows)
    all_pixels = analyze_pixels(flows)
    lines.append("-" * 62)
    lines.append(
        f"{'Total':<10} {total.on_pihole:>8} {total.on_easylist:>9} "
        f"{total.on_easyprivacy:>10} {all_pixels.pixel_count:>11,}"
    )
    lines.append(
        f"\nPixel traffic share: {all_pixels.traffic_share:.1%} "
        f"(paper: 60.7%); dominant party: {all_pixels.dominant_party()[0]} "
        f"(paper: the tvping-like host)"
    )
    lines.append(
        f"Smart-TV lists:  Perflyst {total.on_perflyst} vs Pi-hole "
        f"{total.on_pihole} (paper: −27%);  Kamran {total.on_kamran} "
        f"(paper: −64%)"
    )
    emit("Table III — Tracking requests and filter-list coverage", "\n".join(lines))

    # Shape criteria.
    assert total.on_pihole / total.total < 0.05
    assert total.on_easyprivacy <= total.on_pihole
    assert total.on_perflyst < total.on_pihole
    assert total.on_kamran < total.on_perflyst
    assert all_pixels.traffic_share > 0.4
    assert all_pixels.dominant_party()[0] == "tvping.com"
