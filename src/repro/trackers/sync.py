"""Cookie-syncing partners.

Cookie syncing is the two-step exchange the paper describes in §V-C3: a
channel loads tracker A, and A's response redirects to partner B with
A's user identifier in the URL, letting B link its own cookie to A's.
We model a directed pair: the *initiator* sets a cookie and redirects,
the *receiver* records the incoming partner ID and sets its own cookie.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.http import (
    HttpRequest,
    HttpResponse,
    pixel_response,
    redirect_response,
)
from repro.trackers.base import TrackerService


@dataclass
class SyncService(TrackerService):
    """One endpoint of a cookie-sync relationship."""

    partner_domain: str = ""
    cookie_name: str = "suid"

    def __post_init__(self) -> None:
        super().__post_init__()
        self.syncs_initiated = 0
        self.syncs_received = 0
        self.received_partner_ids: list[str] = []
        self.route("/sync", self._serve_sync)
        self.route("/match", self._serve_match)

    @property
    def sync_url(self) -> str:
        """The URL a channel embeds to kick off the sync chain."""
        return f"{self.scheme}://{self.domain}/sync"

    def _current_uid(self, request: HttpRequest) -> str | None:
        cookie_header = request.headers.get("Cookie", "")
        for pair in cookie_header.split(";"):
            pair = pair.strip()
            if pair.startswith(f"{self.cookie_name}="):
                return pair.split("=", 1)[1]
        return None

    def _serve_sync(self, request: HttpRequest) -> HttpResponse:
        """Initiator endpoint: mint/reuse our ID and redirect to partner."""
        uid = self._current_uid(request)
        fresh = uid is None
        if fresh:
            uid = self.mint_id(18)
        self.syncs_initiated += 1
        if self.partner_domain:
            response = redirect_response(
                f"{self.scheme}://{self.partner_domain}/match?partner_uid={uid}"
                f"&source={self.domain}"
            )
        else:
            response = pixel_response()
        if fresh:
            response.headers.add(
                "Set-Cookie",
                f"{self.cookie_name}={uid}; Path=/; Max-Age=31536000",
            )
        return response

    def _serve_match(self, request: HttpRequest) -> HttpResponse:
        """Receiver endpoint: record the partner's ID, set our own cookie."""
        params = request.query_params()
        partner_uid = params.get("partner_uid", "")
        if partner_uid:
            self.syncs_received += 1
            self.received_partner_ids.append(partner_uid)
        response = pixel_response()
        if self._current_uid(request) is None:
            response.headers.add(
                "Set-Cookie",
                f"{self.cookie_name}={self.mint_id(18)}; Path=/; "
                "Max-Age=31536000",
            )
        return response


@dataclass
class SyncPair:
    """A ready-made initiator → receiver sync relationship."""

    initiator: SyncService
    receiver: SyncService

    @classmethod
    def build(
        cls,
        initiator_name: str,
        initiator_domain: str,
        receiver_name: str,
        receiver_domain: str,
        seed: int = 0,
    ) -> "SyncPair":
        initiator = SyncService(
            name=initiator_name,
            domain=initiator_domain,
            seed=seed,
            partner_domain=receiver_domain,
        )
        receiver = SyncService(
            name=receiver_name, domain=receiver_domain, seed=seed + 1
        )
        return cls(initiator, receiver)

    def services(self) -> list[SyncService]:
        return [self.initiator, self.receiver]
