"""The remote control: key delivery plus interaction logging.

The framework logged over 75k interactions with the TV; the remote is
where those log entries originate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.keys import Key
from repro.tv.device import SmartTV


@dataclass(frozen=True)
class KeyPressEvent:
    """One logged button press."""

    key: Key
    timestamp: float
    channel_id: str


class RemoteControl:
    """Sends keys to a TV and keeps the interaction log."""

    def __init__(self, tv: SmartTV) -> None:
        self.tv = tv
        self.log: list[KeyPressEvent] = []

    def press(self, key: Key) -> None:
        channel = self.tv.current_channel
        self.log.append(
            KeyPressEvent(
                key=key,
                timestamp=self.tv.clock.now,
                channel_id=channel.channel_id if channel else "",
            )
        )
        self.tv.press(key)

    def press_sequence(self, keys: list[Key], gap_seconds: float = 1.0) -> None:
        """Press a sequence with a fixed gap between presses."""
        for key in keys:
            self.press(key)
            self.tv.wait(gap_seconds)

    @property
    def presses(self) -> int:
        return len(self.log)
