"""Map the HbbTV tracking ecosystem (paper §V).

Runs a study through the ``repro.api`` facade and performs the full
tracking analysis via the pass registry: first/third-party
identification, personal-data leakage, tracking pixels, fingerprinting,
filter-list coverage, cookie syncing, and the ecosystem graph.  Every
pass resolves against the study's analysis cache, so each artifact is
computed exactly once no matter how many sections consume it.

Run with::

    python examples/tracking_ecosystem.py [scale]
"""

import sys

from repro.analysis.parties import party_views
from repro.api import Study


def heading(title: str) -> None:
    print(f"\n── {title} " + "─" * max(0, 66 - len(title)))


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    result = Study(seed=7, scale=scale).run()
    dataset = result.dataset
    flows = list(dataset.all_flows())
    print(f"analyzing {len(flows):,} flows from 5 measurement runs")

    passes = result.analyze(
        "parties",
        "leakage",
        "pixels",
        "fingerprinting",
        "filterlists",
        "cookiesync",
        "graph",
        "channels",
    )

    heading("First and third parties (§V-A)")
    first_parties = passes["parties"].first_parties
    views = party_views(flows, first_parties)
    with_third = sum(1 for v in views.values() if v.has_third_parties)
    print(f"channels with identified first party: {len(first_parties)}")
    print(f"channels embedding third parties:     {with_third}")
    overrides = result.context.first_party_overrides
    if overrides:
        channel = next(iter(overrides))
        print(
            f"manually corrected misattribution:    {channel} "
            "(a signal-encoded tracker was its first request)"
        )

    heading("Personal-data leakage (§V-B)")
    leakage = passes["leakage"]
    print(
        f"channels sending device data:  "
        f"{len(leakage.channels_leaking_technical)} "
        f"→ {len(leakage.technical_receivers)} third parties"
    )
    print(
        f"channels sending show/genre:   "
        f"{len(leakage.channels_leaking_behavioural)}"
    )
    print(f"brand-targeting evidence:      {sorted(leakage.brands_seen)}")

    heading("Tracking pixels (§V-D1)")
    pixels = passes["pixels"]
    dominant, count = pixels.dominant_party()
    print(
        f"{pixels.pixel_count:,} pixel requests = "
        f"{pixels.traffic_share:.1%} of all traffic"
    )
    print(
        f"{len(pixels.pixel_etld1s)} pixel parties; dominant: {dominant} "
        f"({count:,} requests on {len(pixels.channels_with_pixels)} channels)"
    )

    heading("Fingerprinting (§V-D2)")
    fingerprints = passes["fingerprinting"]
    share = fingerprints.first_party_requests / max(
        1, fingerprints.related_request_count
    )
    print(
        f"{fingerprints.related_request_count} fingerprinting requests from "
        f"{len(fingerprints.provider_etld1s)} providers on "
        f"{len(fingerprints.channels)} channels ({share:.0%} first-party)"
    )

    heading("Filter-list coverage (§V-D)")
    coverage = passes["filterlists"]
    for name, hits in (
        ("Pi-hole", coverage.on_pihole),
        ("EasyList", coverage.on_easylist),
        ("EasyPrivacy", coverage.on_easyprivacy),
        ("Perflyst SmartTV", coverage.on_perflyst),
        ("Kamran SmartTV", coverage.on_kamran),
    ):
        print(f"{name:<18} {hits:>7,} / {coverage.total:,} "
              f"({hits / coverage.total:.2%})")
    print("→ the web lists miss the HbbTV-native trackers almost entirely")

    heading("Cookie syncing (§V-C3)")
    sync = passes["cookiesync"]
    print(
        f"{sync.potential_ids:,} potential IDs; "
        f"{sync.synced_value_count} synced values between "
        f"{sorted(sync.syncing_domains())} on "
        f"{len(sync.channels_with_syncing())} channels"
    )

    heading("The ecosystem graph (§V-E)")
    report = passes["graph"]
    print(
        f"{report.node_count} nodes, {report.edge_count} edges, "
        f"{report.component_count} component(s), "
        f"avg path {report.average_path_length:.2f}"
    )
    print("hubs:", ", ".join(f"{d} ({deg})" for d, deg in report.top_degree_nodes[:5]))

    heading("Per-channel tracking (§V-D3)")
    profiles = passes["channels"].profiles
    outlier = profiles.outlier()
    print(
        f"{len(profiles.profiles)} channels with tracking; "
        f"mean {profiles.trackers_stats.mean:.1f} trackers/channel "
        f"(max {profiles.trackers_stats.maximum:.0f})"
    )
    if outlier:
        print(
            f"outlier: {outlier.channel_id} with "
            f"{outlier.tracking_requests:,} tracking requests "
            f"(runs: {outlier.tracking_by_run})"
        )

    stats = result.cache.stats()
    print(
        f"\ncache: {stats.hits} hit(s), {stats.misses} miss(es) across "
        f"{stats.lookups} pass lookups"
    )


if __name__ == "__main__":
    main()
