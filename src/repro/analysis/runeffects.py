"""Measurement-run effect tests (§IV-D "Statistical Analysis").

The paper reports that the pressed button (i.e. the measurement run)
has a statistically significant effect on (1) the HTTP(S) traffic a
channel generates and (2) the cookies placed in both storage spaces
(p < 0.0001 each), and that user interaction matters *more* than the
watched channel.  This module reproduces those claims with the same
Kruskal–Wallis machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import KruskalWallisResult, kruskal_wallis
from repro.core.dataset import StudyDataset


@dataclass(frozen=True)
class RunEffectReport:
    """The three §IV-D significance results."""

    traffic_by_run: KruskalWallisResult
    cookies_by_run: KruskalWallisResult | None
    storage_by_run: KruskalWallisResult | None

    @property
    def run_affects_traffic(self) -> bool:
        return self.traffic_by_run.significant

    @property
    def run_affects_cookies(self) -> bool:
        return self.cookies_by_run is not None and self.cookies_by_run.significant


def _per_channel_request_counts(dataset: StudyDataset) -> dict[str, list[float]]:
    groups: dict[str, list[float]] = {}
    for name, run in dataset.runs.items():
        counts: dict[str, int] = {}
        for flow in run.flows:
            if flow.channel_id:
                counts[flow.channel_id] = counts.get(flow.channel_id, 0) + 1
        groups[name] = [float(c) for c in counts.values()]
    return groups


def _per_channel_cookie_counts(dataset: StudyDataset) -> dict[str, list[float]]:
    groups: dict[str, list[float]] = {}
    for name, run in dataset.runs.items():
        counts: dict[str, set] = {}
        for record in run.cookie_records:
            if record.channel_id:
                counts.setdefault(record.channel_id, set()).add(
                    record.cookie.key()
                )
        groups[name] = [float(len(keys)) for keys in counts.values()]
    return groups


def _per_run_storage_counts(dataset: StudyDataset) -> dict[str, list[float]]:
    groups: dict[str, list[float]] = {}
    for name, run in dataset.runs.items():
        per_origin: dict[str, int] = {}
        for entry in run.storage_entries:
            per_origin[entry.origin] = per_origin.get(entry.origin, 0) + 1
        groups[name] = [float(c) for c in per_origin.values()]
    return groups


def run_effect_report(dataset: StudyDataset) -> RunEffectReport:
    """Test whether the measurement run affects traffic and cookies."""
    traffic_groups = _per_channel_request_counts(dataset)
    cookie_groups = _per_channel_cookie_counts(dataset)
    storage_groups = _per_run_storage_counts(dataset)

    traffic = kruskal_wallis(list(traffic_groups.values()))
    cookies = None
    populated_cookies = [g for g in cookie_groups.values() if g]
    if len(populated_cookies) >= 2:
        cookies = kruskal_wallis(populated_cookies)
    storage = None
    populated_storage = [g for g in storage_groups.values() if g]
    if len(populated_storage) >= 2:
        storage = kruskal_wallis(populated_storage)
    return RunEffectReport(
        traffic_by_run=traffic,
        cookies_by_run=cookies,
        storage_by_run=storage,
    )


@dataclass(frozen=True)
class InteractionVsChannelReport:
    """§V-D3's comparison: does interaction matter more than channel?"""

    run_effect: KruskalWallisResult
    channel_effect: KruskalWallisResult

    @property
    def interaction_dominates(self) -> bool:
        """Compare effect sizes: the paper found the pressed button had
        a greater impact on tracking than the watched channel."""
        return self.run_effect.eta_squared >= self.channel_effect.eta_squared


def interaction_vs_channel(
    dataset: StudyDataset, tracking_urls: set[str]
) -> InteractionVsChannelReport:
    """Contrast run-grouped vs channel-grouped tracking volumes.

    ``tracking_urls`` is the set of URLs classified as tracking (from
    :class:`~repro.analysis.tracking.TrackingClassifier`); both tests
    run over per-(channel, run) tracking request counts, grouped one way
    and then the other.
    """
    cell: dict[tuple[str, str], int] = {}
    for run_name, run in dataset.runs.items():
        for flow in run.flows:
            if flow.channel_id and flow.url in tracking_urls:
                key = (flow.channel_id, run_name)
                cell[key] = cell.get(key, 0) + 1

    by_run: dict[str, list[float]] = {}
    by_channel: dict[str, list[float]] = {}
    for (channel_id, run_name), count in cell.items():
        by_run.setdefault(run_name, []).append(float(count))
        by_channel.setdefault(channel_id, []).append(float(count))

    run_effect = kruskal_wallis(list(by_run.values()))
    channel_groups = [g for g in by_channel.values() if len(g) >= 2]
    channel_effect = kruskal_wallis(channel_groups)
    return InteractionVsChannelReport(
        run_effect=run_effect, channel_effect=channel_effect
    )


# -- pass registration -------------------------------------------------------------

from repro.analysis.passes import analysis_pass  # noqa: E402


@analysis_pass("runeffects", version=1)
def run(dataset, ctx) -> RunEffectReport:
    """Pass entry point: do interaction runs change what is collected?"""
    return run_effect_report(dataset)
