"""Deduplication: SHA-1 exact and SimHash near-duplicate grouping.

The study collected 2,656 policy documents from traffic, removed
byte-identical copies via SHA-1 down to 57 distinct texts, and used
SimHash to find 11 groups of nearly identical policies differing only
in details like the channel name.
"""

from __future__ import annotations

import hashlib
import re
from typing import Iterable, Sequence

_TOKEN = re.compile(r"\w+", re.UNICODE)

SIMHASH_BITS = 64
#: Hamming-distance threshold for "near duplicate".  Policies that
#: differ only in details like the channel name land at distance 1–3;
#: distinct boilerplate templates from the same legal tradition sit
#: around 9–15, so 4 separates name-variant groups from mere genre
#: similarity.
DEFAULT_NEAR_THRESHOLD = 4


def normalized(text: str) -> str:
    """Whitespace-insensitive normal form used for hashing."""
    return " ".join(text.split()).lower()


def sha1_digest(text: str) -> str:
    return hashlib.sha1(normalized(text).encode("utf-8")).hexdigest()


def dedup_exact(texts: Iterable[str]) -> dict[str, str]:
    """digest → first text with that digest (SHA-1 exact dedup)."""
    distinct: dict[str, str] = {}
    for text in texts:
        digest = sha1_digest(text)
        distinct.setdefault(digest, text)
    return distinct


def _token_hash(token: str) -> int:
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def simhash(text: str) -> int:
    """Charikar SimHash over word unigrams (64 bit)."""
    weights = [0] * SIMHASH_BITS
    for token in _TOKEN.findall(normalized(text)):
        token_bits = _token_hash(token)
        for bit in range(SIMHASH_BITS):
            if token_bits & (1 << bit):
                weights[bit] += 1
            else:
                weights[bit] -= 1
    value = 0
    for bit, weight in enumerate(weights):
        if weight > 0:
            value |= 1 << bit
    return value


def hamming_distance(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


def simhash_groups(
    texts: Sequence[str], threshold: int = DEFAULT_NEAR_THRESHOLD
) -> list[list[int]]:
    """Group indices of near-duplicate texts (union-find over pairs).

    Returns groups of 2+ members only — singletons are not "groups" in
    the paper's sense.
    """
    hashes = [simhash(text) for text in texts]
    parent = list(range(len(texts)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for i in range(len(texts)):
        for j in range(i + 1, len(texts)):
            if hamming_distance(hashes[i], hashes[j]) <= threshold:
                union(i, j)

    groups: dict[int, list[int]] = {}
    for index in range(len(texts)):
        groups.setdefault(find(index), []).append(index)
    return [members for members in groups.values() if len(members) > 1]
