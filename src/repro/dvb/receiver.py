"""The antenna / receiver: which satellites a location can see, and the
channel scan that produces the TV's channel list.

The paper's setup in Germany could receive Astra 1L, Hot Bird 13E, and
Eutelsat 16E but not Thor (0.8°W) or Hispasat (30°W); the receiver
models that reachability with a visibility window around the antenna's
pointing arc.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dvb.channel import BroadcastChannel
from repro.dvb.satellite import Satellite


@dataclass(frozen=True)
class ReceiverLocation:
    """Where the dish is installed and how wide its usable arc is."""

    name: str
    #: Centre of the visible orbital arc in degrees east.
    arc_center_deg: float
    #: Half-width of the visible arc in degrees.
    arc_half_width_deg: float

    def can_see(self, satellite: Satellite) -> bool:
        return (
            abs(satellite.orbital_position_deg - self.arc_center_deg)
            <= self.arc_half_width_deg
        )


#: The paper's physical setup: a German location seeing 13–19.2°E but not
#: the western satellites.
GERMANY = ReceiverLocation("Germany", arc_center_deg=16.0, arc_half_width_deg=5.0)


class Antenna:
    """A parabolic antenna at a fixed location."""

    def __init__(self, location: ReceiverLocation = GERMANY) -> None:
        self.location = location

    def visible_satellites(self, satellites: list[Satellite]) -> list[Satellite]:
        """The subset of ``satellites`` receivable from this location."""
        return [s for s in satellites if self.location.can_see(s)]

    def scan(self, satellites: list[Satellite]) -> list[BroadcastChannel]:
        """Run a channel scan: every channel on every visible satellite.

        Each returned channel is annotated with the satellite it was
        received from, matching the per-satellite breakdown in §IV-D.
        """
        received: list[BroadcastChannel] = []
        for satellite in self.visible_satellites(satellites):
            for channel in satellite.channels():
                channel.attach_satellite_name(satellite.name)
                received.append(channel)
        return received
