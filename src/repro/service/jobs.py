"""The job queue behind the study service.

``JobManager`` owns everything between an accepted submission and a
served result: a FIFO queue drained by a bounded pool of asyncio
workers, each executing one study at a time in a thread (the event
loop stays responsive while studies crunch), live progress fan-out to
SSE subscribers, and two layers of dedup —

* **live attach**: a submission whose canonical key matches an
  existing job returns that job, whatever its state;
* **cache hit**: a fresh key whose result envelope already sits in the
  :class:`~repro.cache.AnalysisCache` (memory or the disk store a
  previous process wrote) completes instantly without executing.

Both are possible only because the determinism contract makes the
result a pure function of the submission's canonical key — any
replica that executed the same key produced the same bytes, so
serving from the shared disk store is exact, not approximate.

Progress streams off the existing :mod:`repro.obs` tracer via
:func:`~repro.obs.trace_listener`: the study thread taps its own span
stream (``study``/``run``/``channel``/``shard`` boundaries) and
forwards records onto the event loop.  Recording is untouched, so
digests and golden traces stay byte-identical under the service.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field

from repro.api import Study
from repro.cache import MISS, AnalysisCache, artifact_key, default_cache
from repro.obs import trace_listener
from repro.service.schema import Submission

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "Job",
    "JobManager",
    "execute_submission",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Span names forwarded as SSE progress (request-level points are
#: recorded too, but streaming tens of thousands of them per study
#: would drown the channel-level signal the paper's rig reports).
PROGRESS_SPANS = frozenset({"study", "run", "channel", "shard"})

#: The result envelope's identity in the analysis cache: keyed like a
#: pass artifact so the same store (and the same invalidation story)
#: serves both.  Bump the version if the envelope shape changes.
SERVICE_PASS = "service.job"
SERVICE_VERSION = 1


def envelope_key(submission_key: str) -> str:
    """The cache address of one submission's result envelope."""
    return artifact_key(submission_key, SERVICE_PASS, SERVICE_VERSION)


def execute_submission(submission: Submission, publish) -> object:
    """Run one submission to completion (called in a worker thread).

    ``publish(event, payload)`` must be thread-safe; it receives
    ``progress`` records for every study/run/channel/shard span
    boundary the tracer emits.  Returns the finished
    :class:`~repro.api.ResultBase`.
    """

    def forward(event) -> None:
        if event.kind not in ("begin", "end"):
            return
        if event.name not in PROGRESS_SPANS:
            return
        payload = {"span": event.name, "phase": event.kind, "at": event.at}
        payload.update(dict(event.attrs))
        publish("progress", payload)

    study = Study(seed=submission.seed, scale=submission.scale)
    with trace_listener(forward):
        if submission.kind == "fleet":
            return study.fleet(
                submission.households, options=submission.options
            )
        return study.run(options=submission.options)


def summarize_result(result) -> tuple[dict, str, dict]:
    """(summary, report, metrics snapshot) for one finished result.

    Generating the report here — in the worker thread, against the
    service cache — means every analysis pass is computed and cached
    before the first ``GET /studies/{id}/report`` arrives.
    """
    summary = result.to_json_summary()
    report = result.report()
    metrics = getattr(result, "metrics", None)
    snapshot = metrics.snapshot() if metrics is not None else {}
    return summary, report, snapshot


@dataclass
class Job:
    """One submission's lifecycle inside the service."""

    id: str
    submission: Submission
    key: str
    state: str = QUEUED
    #: Completed from a cache envelope without executing.
    cached: bool = False
    digest: str | None = None
    error: str | None = None
    summary: dict | None = None
    report_text: str | None = None
    metrics_snapshot: dict | None = None
    #: The live result while this process holds it (cache-completed
    #: jobs have none — their dataset was never materialized here).
    result: object = field(default=None, repr=False)
    #: Replayable SSE records: {"seq", "event", "data"}.
    events: list = field(default_factory=list)
    #: Live subscriber queues (event-loop only).
    waiters: list = field(default_factory=list, repr=False)
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def as_dict(self) -> dict:
        payload = {
            "id": self.id,
            "kind": self.submission.kind,
            "state": self.state,
            "cached": self.cached,
            "key": self.key,
            "digest": self.digest,
            "error": self.error,
            "events": len(self.events),
            "submission": self.submission.canonical(),
        }
        if self.summary is not None:
            payload["summary"] = self.summary
        return payload


class JobManager:
    """Bounded concurrent execution with content-addressed dedup.

    Every public method runs on the event loop; worker threads reach
    the loop only through ``call_soon_threadsafe``.  ``executor`` is
    the seam the unit tests stub — production uses
    :func:`execute_submission`.
    """

    def __init__(
        self,
        cache: AnalysisCache | None = None,
        max_workers: int = 2,
        executor=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.cache = cache if cache is not None else default_cache()
        self.max_workers = max_workers
        self.executor = executor if executor is not None else execute_submission
        self.jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue | None = None
        self._workers: list[asyncio.Task] = []
        #: ``cache_hits`` counts every submission answered without
        #: spawning an execution; ``dedup_hits`` is the subset that
        #: attached to a job alive in this process.
        self.counters = {
            "submissions": 0,
            "executions": 0,
            "dedup_hits": 0,
            "cache_hits": 0,
            "failures": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"job-worker-{i}")
            for i in range(self.max_workers)
        ]

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []

    # -- submission ------------------------------------------------------------

    def submit(self, submission: Submission) -> tuple[Job, bool]:
        """Admit one submission; returns ``(job, created)``.

        ``created`` is ``False`` when the submission deduped to an
        existing job or completed straight from the cache — the
        acceptance contract: an identical second POST never spawns a
        second execution.
        """
        if self._queue is None:
            raise RuntimeError("JobManager.start() has not run")
        self.counters["submissions"] += 1
        key = submission.key()
        existing_id = self._by_key.get(key)
        if existing_id is not None:
            self.counters["dedup_hits"] += 1
            self.counters["cache_hits"] += 1
            return self.jobs[existing_id], False
        envelope = self.cache.get(envelope_key(key), pass_name=SERVICE_PASS)
        if envelope is not MISS:
            self.counters["cache_hits"] += 1
            job = self._admit(submission, key)
            self._complete_from_envelope(job, envelope)
            return job, False
        job = self._admit(submission, key)
        self._publish(job, "state", {"id": job.id, "state": QUEUED})
        self._queue.put_nowait(job.id)
        return job, True

    def _admit(self, submission: Submission, key: str) -> Job:
        job = Job(
            id=f"job-{next(self._ids):04d}", submission=submission, key=key
        )
        self.jobs[job.id] = job
        self._by_key[key] = job.id
        return job

    def _complete_from_envelope(self, job: Job, envelope: dict) -> None:
        job.cached = True
        job.digest = envelope.get("digest")
        job.summary = envelope.get("summary")
        job.report_text = envelope.get("report")
        job.metrics_snapshot = envelope.get("metrics")
        self._publish(
            job, "state", {"id": job.id, "state": DONE, "cached": True}
        )
        job.state = DONE
        self._publish(job, "done", job.summary or {"digest": job.digest})
        job.done.set()

    # -- execution -------------------------------------------------------------

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            job_id = await self._queue.get()
            try:
                await self._run_job(self.jobs[job_id])
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()

        def publish_threadsafe(event: str, payload: dict) -> None:
            loop.call_soon_threadsafe(self._publish, job, event, payload)

        job.state = RUNNING
        self.counters["executions"] += 1
        self._publish(job, "state", {"id": job.id, "state": RUNNING})
        try:
            result, summary, report, snapshot = await asyncio.to_thread(
                self._execute, job.submission, publish_threadsafe
            )
        except Exception as exc:  # one bad job must not kill the pool
            self.counters["failures"] += 1
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = FAILED
            self._publish(
                job,
                "state",
                {"id": job.id, "state": FAILED, "error": job.error},
            )
            self._publish(job, "failed", {"error": job.error})
            job.done.set()
            return
        job.result = result
        job.digest = summary.get("digest", getattr(result, "digest", None))
        job.summary = summary
        job.report_text = report
        job.metrics_snapshot = snapshot
        self.cache.put(
            envelope_key(job.key),
            {
                "digest": job.digest,
                "summary": summary,
                "report": report,
                "metrics": snapshot,
            },
            meta={"pass": SERVICE_PASS, "submission": job.submission.canonical()},
        )
        job.state = DONE
        self._publish(
            job,
            "state",
            {"id": job.id, "state": DONE, "digest": job.digest},
        )
        self._publish(job, "done", summary)
        job.done.set()

    def _execute(self, submission: Submission, publish):
        """Thread-side: run the study against the service's cache."""
        from dataclasses import replace

        options = replace(submission.options, cache=self.cache)
        result = self.executor(submission.with_options(options), publish)
        summary, report, snapshot = summarize_result(result)
        return result, summary, report, snapshot

    # -- progress fan-out ------------------------------------------------------

    def _publish(self, job: Job, event: str, payload: dict) -> None:
        record = {"seq": len(job.events) + 1, "event": event, "data": payload}
        job.events.append(record)
        for queue in list(job.waiters):
            queue.put_nowait(record)

    async def subscribe(
        self,
        job: Job,
        after_seq: int = 0,
        heartbeat_seconds: float | None = None,
    ):
        """Yield this job's records: replay, then live to the end.

        Registering the waiter *before* snapshotting (both without an
        intervening await) guarantees no record is missed; sequence
        numbers filter the overlap.  ``after_seq`` is the client's
        ``Last-Event-ID``: replay resumes *after* that sequence number,
        so a reconnecting client sees each record exactly once.  When
        ``heartbeat_seconds`` is set, an idle live stream yields
        ``None`` at that cadence — the app layer turns the sentinel
        into an SSE comment frame to keep proxies from reaping the
        connection.
        """
        queue: asyncio.Queue = asyncio.Queue()
        job.waiters.append(queue)
        try:
            replay = list(job.events)
            last = max(0, after_seq)
            for record in replay:
                if record["seq"] <= last:
                    continue
                yield record
                last = record["seq"]
            if replay and replay[-1]["event"] in ("done", "failed"):
                return
            while True:
                if heartbeat_seconds is None:
                    record = await queue.get()
                else:
                    try:
                        record = await asyncio.wait_for(
                            queue.get(), timeout=heartbeat_seconds
                        )
                    except asyncio.TimeoutError:
                        yield None
                        continue
                if record["seq"] <= last:
                    continue
                yield record
                last = record["seq"]
                if record["event"] in ("done", "failed"):
                    return
        finally:
            job.waiters.remove(queue)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "counters": dict(self.counters),
            "jobs": len(self.jobs),
            "by_state": by_state,
            "workers": self.max_workers,
            "cache": self.cache.stats().as_dict(),
        }
