"""Wiring and execution of full studies over a generated world.

``run_study`` assembles the measurement stack (clock → proxy → TV →
webOS API → framework) against a :class:`~repro.simulation.world.World`
and executes the five runs.  ``default_study`` memoizes one study per
``(seed, scale)`` so tests and benchmarks share the expensive dataset.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.clock import SimClock
from repro.core.config import DEFAULT_CONFIG, MeasurementConfig
from repro.core.dataset import StudyDataset
from repro.core.filtering import ChannelFilterPipeline, FilteringReport
from repro.core.framework import MeasurementFramework
from repro.core.runs import RunSpec
from repro.dvb.receiver import Antenna
from repro.proxy.attribution import ChannelAttributor
from repro.proxy.mitm import InterceptionProxy
from repro.simulation.world import World, build_world
from repro.tv.device import SmartTV
from repro.tv.webos import WebOSApi

#: Environment knob for the scale benchmarks/experiments run at.
SCALE_ENV_VAR = "REPRO_SCALE"
DEFAULT_SCALE = 0.2


def configured_scale() -> float:
    """The scale benchmarks use (REPRO_SCALE env var, default 0.2)."""
    raw = os.environ.get(SCALE_ENV_VAR, "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SCALE
    return value if value > 0 else DEFAULT_SCALE


@dataclass
class StudyContext:
    """Everything a finished study exposes to analyses."""

    world: World
    clock: SimClock
    proxy: InterceptionProxy
    tv: SmartTV
    api: WebOSApi
    framework: MeasurementFramework
    dataset: StudyDataset | None = None
    filtering_report: FilteringReport | None = None
    period_start: float = 0.0
    period_end: float = 0.0

    @property
    def first_party_overrides(self) -> dict[str, str]:
        return self.world.manual_first_party_overrides


def make_context(
    world: World, config: MeasurementConfig = DEFAULT_CONFIG
) -> StudyContext:
    """Assemble (but do not run) the measurement stack for a world."""
    clock = SimClock()
    attributor = ChannelAttributor()
    for channel_id, host in world.single_channel_hosts.items():
        channel = world.channel_by_id(channel_id)
        name = channel.name if channel is not None else channel_id
        attributor.register_channel_host(host, channel_id, name)
    proxy = InterceptionProxy(world.network, attributor)
    tv = SmartTV(
        proxy, clock, app_registry=world.app_registry, seed=world.seed
    )
    antenna = Antenna()
    received = antenna.scan(world.satellites)
    tv.install_channel_list(received)
    api = WebOSApi(tv)
    framework = MeasurementFramework(
        api, proxy, world.hbbtv_channels, config=config, seed=world.seed
    )
    return StudyContext(
        world=world,
        clock=clock,
        proxy=proxy,
        tv=tv,
        api=api,
        framework=framework,
        period_start=clock.now,
    )


def run_filtering(context: StudyContext) -> FilteringReport:
    """Run the §IV-B funnel over everything the antenna received.

    The funnel needs a powered, online TV and a running proxy.
    """
    context.proxy.start()
    context.tv.power_on()
    context.tv.connect_wifi()
    pipeline = ChannelFilterPipeline(
        context.api, context.proxy, context.framework.config
    )
    final = pipeline.run(context.tv.channel_list)
    context.framework.channels = final
    context.filtering_report = pipeline.report
    context.tv.power_off()
    context.proxy.stop()
    return pipeline.report


def run_study(
    world: World,
    config: MeasurementConfig = DEFAULT_CONFIG,
    runs: list[RunSpec] | None = None,
    with_filtering: bool = False,
) -> StudyContext:
    """Execute the measurement study against a world."""
    context = make_context(world, config)
    if with_filtering:
        run_filtering(context)
    context.dataset = context.framework.run_study(runs)
    context.period_end = context.clock.now
    return context


_STUDY_CACHE: dict[tuple[int, float], StudyContext] = {}


def default_study(
    seed: int = 7, scale: float | None = None
) -> StudyContext:
    """A memoized full study for tests, benches, and examples."""
    if scale is None:
        scale = configured_scale()
    key = (seed, scale)
    if key not in _STUDY_CACHE:
        world = build_world(seed=seed, scale=scale)
        _STUDY_CACHE[key] = run_study(world)
    return _STUDY_CACHE[key]
