"""Shared-uplink throughput: requests/sec + shed rate at fleet scale.

Runs one fleet study — default N=50 households on the columnar backend
with the congested netsim and the contended ``neighbourhood`` uplink —
and persists requests-per-second and the uplink shed rate to
``BENCH_uplink.json`` (CI restores the previous file as the regression
baseline; a >2x throughput drop fails the bench).  Digest equivalence
across workers/shards/backends with the uplink on is pinned separately
by ``tests/test_uplink.py``, so this bench only measures.

Knobs (environment):

* ``REPRO_UPLINK_BENCH_N`` — fleet size (default 50);
* ``REPRO_UPLINK_BENCH_SCALE`` — world scale (default 0.02);
* ``REPRO_UPLINK_BENCH_WORKERS`` — worker processes (default 4);
* ``REPRO_UPLINK_BENCH_PATH`` — where the JSON persists.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import SEED, emit
from repro.core.runs import standard_runs
from repro.fleet import run_fleet_study

RESULT_PATH = Path(
    os.environ.get("REPRO_UPLINK_BENCH_PATH", "BENCH_uplink.json")
)
#: Fail when requests/sec drops below baseline / factor.
REGRESSION_FACTOR = 2.0

N_HOUSEHOLDS = int(os.environ.get("REPRO_UPLINK_BENCH_N", "50"))
UPLINK_SCALE = float(os.environ.get("REPRO_UPLINK_BENCH_SCALE", "0.02"))
WORKERS = int(os.environ.get("REPRO_UPLINK_BENCH_WORKERS", "4"))


def test_uplink_throughput(benchmark):
    runs = standard_runs(0)[:2]

    def execute():
        return run_fleet_study(
            fleet_seed=SEED,
            n_households=N_HOUSEHOLDS,
            scale=UPLINK_SCALE,
            runs=runs,
            netsim="congested",
            uplink="neighbourhood",
            workers=WORKERS,
            shards=1,
            backend="columnar",
        )

    started = time.perf_counter()
    fleet = benchmark.pedantic(execute, rounds=1, iterations=1)
    wall = time.perf_counter() - started

    total_requests = fleet.dataset.total_requests()
    requests_per_second = total_requests / wall if wall else 0.0
    metrics = fleet.metrics
    uplink_offered = metrics.counter_total("netsim.uplink.offered")
    uplink_shed = metrics.counter_total("netsim.uplink.shed")
    shed_rate = (
        uplink_shed / (uplink_offered + uplink_shed)
        if (uplink_offered + uplink_shed)
        else 0.0
    )
    honoured = metrics.counter_total("resilience.retry_after_honoured")

    result = {
        "seed": SEED,
        "n_households": N_HOUSEHOLDS,
        "scale": UPLINK_SCALE,
        "workers": WORKERS,
        "backend": "columnar",
        "netsim": "congested",
        "uplink": "neighbourhood",
        "wall_seconds": round(wall, 2),
        "total_requests": total_requests,
        "requests_per_second": round(requests_per_second, 3),
        "uplink_offered": uplink_offered,
        "uplink_shed": uplink_shed,
        "uplink_shed_rate": round(shed_rate, 4),
        "retry_after_honoured": honoured,
        "fleet_digest": fleet.digest(),
    }

    baseline = None
    if RESULT_PATH.exists():
        try:
            baseline = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            baseline = None
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    lines = [
        f"{N_HOUSEHOLDS} households (scale {UPLINK_SCALE}, {WORKERS} "
        f"workers, columnar, congested + neighbourhood uplink) in "
        f"{wall:.1f}s = {requests_per_second:.1f} requests/sec",
        f"{total_requests:,} requests; uplink shed rate "
        f"{shed_rate:.2%} ({uplink_shed:,} of "
        f"{uplink_offered + uplink_shed:,} offered at the link)",
        f"{honoured:,} Retry-After back-offs honoured by clients",
        f"fleet digest {fleet.digest()[:16]}…",
        f"persisted to {RESULT_PATH}",
    ]
    if baseline is not None:
        lines.append(
            f"baseline: {baseline.get('requests_per_second', 0):.1f} "
            "requests/sec"
        )
    emit("Shared uplink — fleet throughput under contention", "\n".join(lines))

    assert total_requests > 0
    assert uplink_offered > 0
    comparable = (
        baseline is not None
        and baseline.get("requests_per_second")
        and baseline.get("n_households") == N_HOUSEHOLDS
        and baseline.get("scale") == UPLINK_SCALE
        and baseline.get("workers") == WORKERS
    )
    if comparable:
        floor = baseline["requests_per_second"] / REGRESSION_FACTOR
        assert requests_per_second >= floor, (
            f"uplink throughput regressed >{REGRESSION_FACTOR}x: "
            f"{requests_per_second:.1f} requests/sec vs baseline "
            f"{baseline['requests_per_second']:.1f}"
        )
