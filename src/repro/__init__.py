"""repro — reproduction of "Privacy from 5 PM to 6 AM: Tracking and
Transparency Mechanisms in the HbbTV Ecosystem" (DSN 2025).

Top-level convenience API::

    import repro

    result = repro.Study(seed=7, scale=0.2).run()
    print(result.table1())
    print(result.report())

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.dvb` — DVB-S broadcast substrate
- :mod:`repro.net` — HTTP/cookies/storage substrate
- :mod:`repro.trackers` — third-party service implementations
- :mod:`repro.hbbtv` — application specs, runtime, consent notices
- :mod:`repro.tv` — the webOS-like television
- :mod:`repro.proxy` — the interception proxy
- :mod:`repro.core` — the measurement framework (paper §IV)
- :mod:`repro.simulation` — world generation and study execution
- :mod:`repro.analysis` — analysis passes + registry (paper §V)
- :mod:`repro.cache` — content-addressed analysis artifact cache
- :mod:`repro.consent` — consent-notice analyses (paper §VI)
- :mod:`repro.policy` — privacy-policy pipeline (paper §VII)
- :mod:`repro.api` — the :class:`Study`/:class:`StudyResult` facade

The legacy aliases (``run_study``, ``default_study``,
``run_default_study``) survive as thin shims over the same engine; the
package-level ``repro.simulation`` pair additionally warns.
"""

from repro.api import Study, StudyResult
from repro.core.report import format_overview_table, overview_table
from repro.simulation.study import default_study, run_study
from repro.simulation.world import build_world

__version__ = "1.1.0"

__all__ = [
    "Study",
    "StudyResult",
    "build_world",
    "run_study",
    "default_study",
    "run_default_study",
    "table1",
    "__version__",
]


def run_default_study(seed: int = 7, scale: float | None = None):
    """Run (or fetch the memoized) study for ``(seed, scale)``."""
    return default_study(seed=seed, scale=scale)


def table1(dataset) -> str:
    """Render the Table I overview for a study dataset."""
    return format_overview_table(overview_table(dataset))
