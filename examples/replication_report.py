"""Generate the one-shot replication report.

Runs a study through the ``repro.api`` facade and writes a markdown
document comparing every table, figure, and headline number against the
paper.  Analyses resolve through the content-addressed cache, so
regenerating the report for an already-analyzed study is nearly free.

Run with::

    python examples/replication_report.py [scale] [output.md]
"""

import sys

from repro.api import Study


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    output = sys.argv[2] if len(sys.argv) > 2 else ""

    result = Study(seed=7, scale=scale).run()
    report = result.report()

    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {output}")
    else:
        print(report)


if __name__ == "__main__":
    main()
