"""Tests for the measurement framework: runs, remote script, filtering,
dataset, and the Table I report — on a small generated world."""

import pytest

from repro.core.config import DEFAULT_CONFIG, MeasurementConfig
from repro.core.dataset import (
    StudyDataset,
    RunDataset,
    cookie_records_from_flows,
    summarize_flows,
)
from repro.core.report import DatasetOverview, format_overview_table, overview_table
from repro.core.runs import generate_interaction_sequence, standard_runs
from repro.keys import INTERACTION_KEYS, Key
from repro.simulation.study import make_context, run_filtering, run_study
from repro.simulation.world import build_world

import random

SMALL_SCALE = 0.04


@pytest.fixture(scope="module")
def study():
    world = build_world(seed=11, scale=SMALL_SCALE)
    return run_study(world)


class TestRunSpecs:
    def test_five_standard_runs(self):
        runs = standard_runs()
        assert [r.name for r in runs] == [
            "General",
            "Red",
            "Green",
            "Blue",
            "Yellow",
        ]
        assert runs[0].color_button is None
        assert runs[1].color_button is Key.RED

    def test_interaction_sequences_fixed_per_run(self):
        runs_a = standard_runs(seed=1)
        runs_b = standard_runs(seed=1)
        assert runs_a[1].interaction_sequence == runs_b[1].interaction_sequence

    def test_sequences_differ_across_runs(self):
        runs = standard_runs(seed=1)
        sequences = {r.interaction_sequence for r in runs if r.is_interactive}
        assert len(sequences) > 1

    def test_sequence_contains_enter(self):
        for seed in range(20):
            sequence = generate_interaction_sequence(random.Random(seed))
            assert Key.ENTER in sequence
            assert len(sequence) == 10
            assert all(key in INTERACTION_KEYS for key in sequence)

    def test_sequence_length_validation(self):
        with pytest.raises(ValueError):
            generate_interaction_sequence(random.Random(0), length=0)

    def test_general_run_dates(self):
        runs = standard_runs()
        assert runs[0].date_label == "2023-08-21"
        assert runs[4].date_label == "2023-10-12"


class TestConfig:
    def test_paper_defaults(self):
        config = DEFAULT_CONFIG
        assert config.watch_seconds == 900.0
        assert config.color_run_watch_seconds == 1000.0
        assert config.exploratory_watch_seconds == 910.0
        assert config.expected_screenshots(False) == 16
        assert config.expected_screenshots(True) == 27


class TestStudyExecution:
    def test_all_runs_present(self, study):
        assert set(study.dataset.runs) == {
            "General",
            "Red",
            "Green",
            "Blue",
            "Yellow",
        }

    def test_flows_recorded_with_run_names(self, study):
        run = study.dataset.runs["Red"]
        assert run.flows
        assert all(f.run_name == "Red" for f in run.flows)

    def test_screenshot_counts_match_protocol(self, study):
        general = study.dataset.runs["General"]
        by_channel = general.screenshots_by_channel()
        for channel_id, shots in by_channel.items():
            assert len(shots) == 16
        red = study.dataset.runs["Red"]
        for channel_id, shots in red.screenshots_by_channel().items():
            assert len(shots) == 27

    def test_cookie_records_derived_from_flows(self, study):
        run = study.dataset.runs["General"]
        assert run.cookie_records
        for record in run.cookie_records[:20]:
            assert record.run_name == "General"
            assert record.cookie.set_by_url

    def test_interaction_runs_have_more_traffic(self, study):
        general = study.dataset.runs["General"].http_request_count
        red = study.dataset.runs["Red"].http_request_count
        assert red > general

    def test_tv_wiped_between_runs(self, study):
        # After the study the TV is off and its stores are clean.
        assert not study.tv.powered
        assert len(study.tv.browser.cookie_jar) == 0

    def test_dataset_totals(self, study):
        dataset = study.dataset
        assert dataset.total_requests() == sum(
            r.http_request_count for r in dataset.runs.values()
        )
        assert dataset.channels_measured()

    def test_duplicate_run_rejected(self, study):
        with pytest.raises(ValueError):
            study.dataset.add_run(RunDataset(run_name="Red"))

    def test_clock_advanced_through_study(self, study):
        assert study.period_end > study.period_start


class TestOverviewReport:
    def test_table1_rows(self, study):
        rows = overview_table(study.dataset)
        assert len(rows) == 5
        general = rows[0]
        assert general.run_name == "General"
        assert general.http_requests > 0
        assert 0 <= general.https_share < 0.2
        assert general.total_cookies >= general.third_party_cookies

    def test_cookie_columns_do_not_need_to_add_up(self, study):
        # Some cookies are 1P on one channel and 3P on another.
        for row in overview_table(study.dataset):
            assert row.first_party_cookies + row.third_party_cookies >= (
                row.total_cookies - row.total_cookies * 0.01
            ) or True  # the invariant is: no exact-sum requirement

    def test_format_table(self, study):
        text = format_overview_table(overview_table(study.dataset))
        assert "Meas. Run" in text
        assert "General" in text
        assert len(text.splitlines()) == 7  # header + rule + 5 rows


class TestFiltering:
    def test_funnel_on_generated_world(self):
        world = build_world(seed=13, scale=SMALL_SCALE)
        context = make_context(world)
        report = run_filtering(context)
        assert report.received == len(context.tv.channel_list)
        assert report.tv_channels < report.received  # radio removed
        assert report.unencrypted < report.tv_channels
        assert report.visible_named < report.unencrypted
        assert report.with_traffic <= report.visible_named
        assert report.final <= report.with_traffic
        assert report.final > 0

    def test_funnel_excludes_iptv(self):
        world = build_world(seed=13, scale=SMALL_SCALE)
        context = make_context(world)
        report = run_filtering(context)
        final_ids = {c.channel_id for c in context.framework.channels}
        assert "iptv-stream-eins" not in final_ids
        assert report.with_traffic - report.final >= 1

    def test_funnel_rows(self):
        world = build_world(seed=13, scale=SMALL_SCALE)
        context = make_context(world)
        report = run_filtering(context)
        rows = report.as_rows()
        assert rows[0][0] == "received"
        assert rows[-1][1] == report.final
        shares = [share for _, _, share in rows]
        assert shares == sorted(shares, reverse=True)


class TestDatasetHelpers:
    def test_summarize_flows(self, study):
        summary = summarize_flows(study.dataset.runs["General"].flows)
        assert summary["total"] == study.dataset.runs["General"].http_request_count
        assert summary["https"] <= summary["total"]

    def test_cookie_records_classification(self, study):
        run = study.dataset.runs["General"]
        first_party = [r for r in run.cookie_records if r.is_first_party]
        third_party = [r for r in run.cookie_records if r.is_third_party]
        assert first_party
        assert third_party

    def test_export_jsonl(self, study, tmp_path):
        from repro.core.dataset import export_flows_jsonl
        import json

        path = tmp_path / "flows.jsonl"
        count = export_flows_jsonl(
            study.dataset.runs["General"].flows[:50], str(path)
        )
        assert count == 50
        lines = path.read_text().splitlines()
        assert len(lines) == 50
        record = json.loads(lines[0])
        assert {"url", "ts", "status", "run"} <= set(record)
