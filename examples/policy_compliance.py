"""Privacy-policy pipeline and compliance audit (paper §VII).

Collects policies from recorded traffic, runs the full pipeline
(extraction → language → classification → dedup → practice annotation →
GDPR dictionary), and audits declared-vs-observed behaviour — including
the headline "5 PM to 6 AM" children's-channel discrepancy.

Run with::

    python examples/policy_compliance.py [scale]
"""

import sys

from repro.analysis.parties import identify_first_parties
from repro.policy.corpus import collect_policies
from repro.policy.discrepancy import DiscrepancyKind, audit_discrepancies
from repro.policy.gdpr import GdprDictionary
from repro.policy.practices import annotate_practices
from repro.simulation import build_world, run_study


def heading(title: str) -> None:
    print(f"\n── {title} " + "─" * max(0, 66 - len(title)))


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    context = run_study(build_world(seed=7, scale=scale))
    flows = list(context.dataset.all_flows())

    heading("Collection from traffic (§VII-A)")
    corpus = collect_policies(flows)
    print(f"HTML pages inspected:        {corpus.html_pages_seen:,}")
    print(f"policy occurrences found:    {len(corpus.documents):,}")
    print(f"  per run: {corpus.per_run_counts()}")
    print(f"  languages: {corpus.per_language_counts()}")
    print(f"classifier false negatives recovered: {corpus.manually_recovered}")
    print(f"distinct texts after SHA-1 dedup:     {corpus.distinct_count()}")
    groups = corpus.near_duplicate_groups()
    print(f"SimHash near-duplicate groups:        {len(groups)}")
    for group in groups[:3]:
        channels = sorted({d.channel_id for d in group})
        print(f"  group of {len(group)}: channels {channels}")

    heading("Data practices (§VII-B/C)")
    distinct = list(corpus.distinct_texts().values())
    annotations = [annotate_practices(d.text) for d in distinct]
    total = len(annotations)
    dictionary = GdprDictionary()

    def share(predicate) -> str:
        count = sum(1 for a in annotations if predicate(a))
        return f"{count}/{total} ({count / total:.0%})"

    print(f"mention 'HbbTV':              {share(lambda a: a.mentions_hbbtv)}")
    print(f"blue-button settings hint:    {share(lambda a: a.blue_button_hint)}")
    print(f"declare 3rd-party collection: {share(lambda a: a.third_party_collection)}")
    print(f"invoke legitimate interests:  {share(lambda a: a.uses_legitimate_interest)}")
    print(f"TDDDG/§25 reference:          {share(lambda a: a.tdddg_mention)}")
    print(f"opt-out-only wording:         {share(lambda a: a.opt_out_statements)}")
    print(f"vague statements:             {share(lambda a: a.vague_statements)}")
    print("rights articles:")
    for article in (15, 16, 17, 18, 20, 21, 77):
        count = sum(1 for a in annotations if article in a.rights_articles)
        print(f"  Art. {article:<3} {count}/{total} ({count / total:.0%})")
    aware = sum(1 for d in distinct if dictionary.analyze(d.text).is_gdpr_aware)
    print(f"GDPR-aware by phrase dictionary: {aware}/{total}")

    heading("Declared vs observed (§VII-C)")
    first_parties = identify_first_parties(
        flows, manual_overrides=context.first_party_overrides
    )
    by_channel = {
        d.channel_id: annotate_practices(d.text)
        for d in corpus.documents
        if d.channel_id
    }
    report = audit_discrepancies(flows, by_channel, first_parties)
    for kind in DiscrepancyKind:
        print(f"{kind.name:<28} {len(report.by_kind(kind))} findings")

    violations = report.by_kind(DiscrepancyKind.TIME_WINDOW_VIOLATION)
    if violations:
        heading('The "5 PM to 6 AM" case')
        for violation in violations:
            children = violation.channel_id in context.world.children_channel_ids
            marker = " (children's channel!)" if children else ""
            print(f"\n{violation.channel_id}{marker}")
            print(f"  {violation.detail}")
            print(f"  trackers: {', '.join(violation.tracker_etld1s)}")
            for url in violation.evidence_urls[:2]:
                print(f"  evidence: {url}")


if __name__ == "__main__":
    main()
