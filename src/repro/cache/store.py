"""Storage tiers for the content-addressed artifact cache.

Two tiers with one contract — ``get`` returns :data:`MISS` (a unique
sentinel, since ``None`` is a legitimate artifact) and ``put`` never
fails the caller:

* :class:`MemoryLRU` holds live Python objects with least-recently-used
  eviction.  It is the hot tier every lookup touches first.
* :class:`DiskJSONStore` persists codec-encoded envelopes as one JSON
  file per key, written atomically (temp file + rename).  A corrupt or
  tampered file reads as a miss, never as a wrong value: the envelope
  embeds a payload content hash that is re-checked on every load.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Any, Iterator

from repro.cache.codec import (
    CODEC_VERSION,
    CodecError,
    canonical_json,
    decode,
    encode,
    payload_digest,
)

#: Unique miss sentinel — ``None`` is a valid cached artifact.
MISS = object()


class MemoryLRU:
    """An in-memory LRU map from artifact key to live result object."""

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"need at least one entry, got {max_entries}")
        self.max_entries = max_entries
        self.evictions = 0
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any:
        if key not in self._entries:
            return MISS
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, value: Any) -> int:
        """Store a value; returns how many entries were evicted."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def clear(self) -> None:
        self._entries.clear()

    def keys(self) -> list[str]:
        return list(self._entries)


class DiskJSONStore:
    """One JSON envelope file per artifact key under a directory."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def iter_keys(self) -> Iterator[str]:
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return
        for name in names:
            if name.endswith(".json"):
                yield name[: -len(".json")]

    def get(self, key: str) -> Any:
        """Load and decode one artifact; any corruption reads as a miss."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return MISS
        if self._envelope_error(key, envelope) is not None:
            return MISS
        try:
            return decode(envelope["payload"])
        except (CodecError, KeyError, TypeError, AttributeError):
            return MISS

    def put(self, key: str, value: Any, meta: dict | None = None) -> None:
        """Encode and persist one artifact atomically.

        Values the codec cannot express are skipped silently — the disk
        tier is an accelerator, not a system of record.
        """
        try:
            payload = encode(value)
        except CodecError:
            return
        envelope = dict(meta or {})
        envelope.update(
            key=key,
            codec=CODEC_VERSION,
            payload=payload,
            payload_sha256=payload_digest(payload),
        )
        path = self._path(key)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def read_meta(self, key: str) -> dict | None:
        """The envelope without its payload (for stats/verify listings)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return {k: v for k, v in envelope.items() if k != "payload"}

    def clear(self) -> int:
        removed = 0
        for key in list(self.iter_keys()):
            try:
                os.unlink(self._path(key))
                removed += 1
            except OSError:
                pass
        return removed

    def total_bytes(self) -> int:
        total = 0
        for key in self.iter_keys():
            try:
                total += os.path.getsize(self._path(key))
            except OSError:
                pass
        return total

    def _envelope_error(self, key: str, envelope: Any) -> str | None:
        if not isinstance(envelope, dict):
            return "envelope is not an object"
        if envelope.get("key") != key:
            return f"key mismatch: file says {envelope.get('key')!r}"
        if envelope.get("codec") != CODEC_VERSION:
            return f"codec version {envelope.get('codec')!r} != {CODEC_VERSION}"
        if "payload" not in envelope:
            return "missing payload"
        recorded = envelope.get("payload_sha256")
        actual = payload_digest(envelope["payload"])
        if recorded != actual:
            return f"payload hash mismatch ({recorded} != {actual})"
        return None

    def verify(self) -> list[str]:
        """Integrity-check every envelope; returns human-readable issues."""
        issues = []
        for key in self.iter_keys():
            try:
                with open(self._path(key), "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                issues.append(f"{key}: unreadable ({error})")
                continue
            error_text = self._envelope_error(key, envelope)
            if error_text is not None:
                issues.append(f"{key}: {error_text}")
                continue
            try:
                decode(envelope["payload"])
            except (CodecError, KeyError, TypeError, AttributeError) as error:
                issues.append(f"{key}: payload does not decode ({error})")
        return issues
