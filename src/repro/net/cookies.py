"""Cookies: Set-Cookie parsing and a browser-grade cookie jar.

The jar implements the subset of RFC 6265 the study depends on: domain
and path matching, host-only vs domain cookies, expiry, Secure, and
replacement semantics.  First- vs third-party attribution is *not* a jar
concern — the paper derives it per channel from traffic — but the jar
records which request URL set each cookie so analyses can re-derive it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.url import URL, registrable_domain


@dataclass(frozen=True)
class Cookie:
    """A single cookie as stored in the jar."""

    name: str
    value: str
    domain: str
    path: str = "/"
    expires: float | None = None  # absolute epoch seconds; None = session
    secure: bool = False
    http_only: bool = False
    host_only: bool = True
    created_at: float = 0.0
    set_by_url: str = ""  # the request URL whose response set this cookie

    @property
    def etld1(self) -> str:
        return registrable_domain(self.domain)

    def is_expired(self, now: float) -> bool:
        """True once the cookie's expiry time *has passed* (RFC 6265).

        The comparison is strict: a ``Max-Age`` cookie stored as
        ``now + max_age`` is still live at that exact instant — it
        expires only when ``now`` moves beyond it.
        """
        return self.expires is not None and self.expires < now

    def matches(self, url: URL) -> bool:
        """True if this cookie would be sent on a request to ``url``."""
        if self.secure and not url.is_secure:
            return False
        return _domain_matches(
            url.host, self.domain, self.host_only
        ) and _path_matches(url.path, self.path)

    def key(self) -> tuple[str, str, str]:
        """Identity triple used for replacement: (name, domain, path)."""
        return (self.name, self.domain, self.path)


class CookieParseError(ValueError):
    """Raised for malformed Set-Cookie header values."""


def parse_set_cookie(
    header: str, request_url: URL, now: float = 0.0
) -> Cookie:
    """Parse one ``Set-Cookie`` header value in the context of a request.

    Implements default-domain (host-only), default-path, Max-Age
    precedence over Expires, and leading-dot stripping.
    """
    parts = [p.strip() for p in header.split(";")]
    if not parts or "=" not in parts[0]:
        raise CookieParseError(f"malformed cookie: {header!r}")
    name, value = parts[0].split("=", 1)
    name = name.strip()
    if not name:
        raise CookieParseError(f"empty cookie name: {header!r}")

    domain = request_url.host
    host_only = True
    path = _default_path(request_url.path)
    expires: float | None = None
    max_age: float | None = None
    secure = False
    http_only = False

    for attribute in parts[1:]:
        if "=" in attribute:
            attr_name, attr_value = attribute.split("=", 1)
        else:
            attr_name, attr_value = attribute, ""
        attr_name = attr_name.strip().lower()
        attr_value = attr_value.strip()
        if attr_name == "domain" and attr_value:
            candidate = attr_value.lstrip(".").lower()
            if not _domain_matches(request_url.host, candidate, host_only=False):
                raise CookieParseError(
                    f"domain {candidate!r} does not cover host {request_url.host!r}"
                )
            domain = candidate
            host_only = False
        elif attr_name == "path" and attr_value.startswith("/"):
            path = attr_value
        elif attr_name == "max-age":
            try:
                max_age = float(attr_value)
            except ValueError as exc:
                raise CookieParseError(f"bad Max-Age: {attr_value!r}") from exc
        elif attr_name == "expires" and attr_value:
            expires = _parse_expires(attr_value)
        elif attr_name == "secure":
            secure = True
        elif attr_name == "httponly":
            http_only = True
        # SameSite and unknown attributes are accepted and ignored.

    if max_age is not None:
        if max_age > 0:
            expires = now + max_age
        else:
            # RFC 6265 §5.2.2: a zero or negative Max-Age means "the
            # earliest representable time" — immediate deletion.  A
            # strictly-past expiry (never exactly ``now``, which would
            # still be live under the boundary semantics above).
            expires = min(now, 0.0) - 1.0

    return Cookie(
        name=name,
        value=value.strip(),
        domain=domain,
        path=path,
        expires=expires,
        secure=secure,
        http_only=http_only,
        host_only=host_only,
        created_at=now,
        set_by_url=str(request_url),
    )


class CookieJar:
    """A mutable cookie store with RFC 6265 matching semantics."""

    def __init__(self) -> None:
        self._cookies: dict[tuple[str, str, str], Cookie] = {}

    def __len__(self) -> int:
        return len(self._cookies)

    def __iter__(self):
        return iter(self._cookies.values())

    def all(self) -> list[Cookie]:
        """Every stored cookie, in insertion order."""
        return list(self._cookies.values())

    def store(self, cookie: Cookie, now: float = 0.0) -> None:
        """Insert or replace a cookie; an already-expired cookie deletes."""
        key = cookie.key()
        if cookie.is_expired(now):
            self._cookies.pop(key, None)
            return
        existing = self._cookies.get(key)
        if existing is not None:
            # Preserve the original creation time on replacement.
            cookie = replace(cookie, created_at=existing.created_at)
        self._cookies[key] = cookie

    def store_from_response(
        self, request_url: URL, set_cookie_headers: list[str], now: float = 0.0
    ) -> list[Cookie]:
        """Parse and store every Set-Cookie header; returns stored cookies.

        Malformed headers are skipped (browsers do the same), so one bad
        header never poisons a response.
        """
        stored = []
        for header in set_cookie_headers:
            try:
                cookie = parse_set_cookie(header, request_url, now)
            except CookieParseError:
                continue
            self.store(cookie, now)
            stored.append(cookie)
        return stored

    def cookies_for(self, url: URL, now: float = 0.0) -> list[Cookie]:
        """Cookies that would be attached to a request to ``url``.

        Sorted by path length (longest first) then creation time, as
        RFC 6265 prescribes for the Cookie header.
        """
        matches = [
            c
            for c in self._cookies.values()
            if not c.is_expired(now) and c.matches(url)
        ]
        matches.sort(key=lambda c: (-len(c.path), c.created_at))
        return matches

    def cookie_header_for(self, url: URL, now: float = 0.0) -> str:
        """Serialize matching cookies into a Cookie header value."""
        return "; ".join(
            f"{c.name}={c.value}" for c in self.cookies_for(url, now)
        )

    def clear(self) -> None:
        """Wipe the jar (the paper wipes the TV between runs)."""
        self._cookies.clear()

    def evict_expired(self, now: float) -> int:
        """Drop expired cookies; returns the number removed."""
        dead = [k for k, c in self._cookies.items() if c.is_expired(now)]
        for key in dead:
            del self._cookies[key]
        return len(dead)


def _default_path(request_path: str) -> str:
    if not request_path.startswith("/") or request_path == "/":
        return "/"
    directory = request_path.rsplit("/", 1)[0]
    return directory or "/"


def _domain_matches(host: str, cookie_domain: str, host_only: bool) -> bool:
    host = host.lower()
    cookie_domain = cookie_domain.lower()
    if host_only:
        return host == cookie_domain
    return host == cookie_domain or host.endswith("." + cookie_domain)


def _path_matches(request_path: str, cookie_path: str) -> bool:
    if request_path == cookie_path:
        return True
    if request_path.startswith(cookie_path):
        return cookie_path.endswith("/") or request_path[len(cookie_path)] == "/"
    return False


def _parse_expires(text: str) -> float | None:
    """Parse an Expires attribute.

    We accept epoch seconds (our servers emit those) and the classic
    IMF-fixdate format; anything else yields None (session cookie).
    """
    try:
        return float(text)
    except ValueError:
        pass
    import email.utils

    parsed = email.utils.parsedate_to_datetime(text)
    if parsed is None:
        return None
    return parsed.timestamp()
