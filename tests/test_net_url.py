"""Tests for URL parsing and eTLD+1 computation."""

import pytest
from hypothesis import given, strategies as st

from repro.net.url import (
    URL,
    URLError,
    public_suffix,
    registrable_domain,
    same_party,
)


class TestParse:
    def test_basic_https(self):
        url = URL.parse("https://www.example.de/path/page?a=1#frag")
        assert url.scheme == "https"
        assert url.host == "www.example.de"
        assert url.port == 443
        assert url.path == "/path/page"
        assert url.query == "a=1"
        assert url.fragment == "frag"

    def test_default_ports(self):
        assert URL.parse("http://h.de/").port == 80
        assert URL.parse("https://h.de/").port == 443

    def test_explicit_port(self):
        url = URL.parse("http://h.de:8080/x")
        assert url.port == 8080
        assert url.origin == "http://h.de:8080"

    def test_no_path_defaults_to_root(self):
        assert URL.parse("http://host.de").path == "/"

    def test_host_lowercased(self):
        assert URL.parse("http://HOST.De/").host == "host.de"

    def test_userinfo_stripped(self):
        assert URL.parse("http://user:pw@host.de/").host == "host.de"

    def test_rejects_relative(self):
        with pytest.raises(URLError):
            URL.parse("/just/a/path")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(URLError):
            URL.parse("ftp://host.de/")

    def test_rejects_empty_host(self):
        with pytest.raises(URLError):
            URL.parse("http:///path")

    def test_rejects_bad_port(self):
        with pytest.raises(URLError):
            URL.parse("http://host.de:abc/")

    def test_str_roundtrip(self):
        raw = "https://cdn.example.com/a/b?x=1&y=2#top"
        assert str(URL.parse(raw)) == raw

    def test_str_elides_default_port(self):
        assert str(URL.parse("https://h.de:443/p")) == "https://h.de/p"


class TestDerived:
    def test_origin(self):
        assert URL.parse("https://a.b.de/x").origin == "https://a.b.de"

    def test_is_secure(self):
        assert URL.parse("https://h.de/").is_secure
        assert not URL.parse("http://h.de/").is_secure

    def test_query_params(self):
        url = URL.parse("http://h.de/?a=1&b=two&empty=")
        assert url.query_params() == {"a": "1", "b": "two", "empty": ""}

    def test_with_query(self):
        url = URL.parse("http://h.de/p").with_query({"k": "v 1"})
        assert url.query_params() == {"k": "v 1"}

    def test_etld1(self):
        assert URL.parse("https://apps.hbbtv.ard.de/x").etld1 == "ard.de"


class TestJoin:
    def test_absolute_reference(self):
        base = URL.parse("http://a.de/x")
        assert str(base.join("https://b.de/y")) == "https://b.de/y"

    def test_absolute_path(self):
        base = URL.parse("http://a.de/x/y")
        assert str(base.join("/z?q=1")) == "http://a.de/z?q=1"

    def test_relative_path(self):
        base = URL.parse("http://a.de/dir/page.html")
        assert str(base.join("other.js")) == "http://a.de/dir/other.js"

    def test_protocol_relative(self):
        base = URL.parse("https://a.de/x")
        assert str(base.join("//cdn.b.de/lib.js")) == "https://cdn.b.de/lib.js"


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("www.ard.de", "ard.de"),
            ("ard.de", "ard.de"),
            ("a.b.c.tracker.com", "tracker.com"),
            ("static.service.co.uk", "service.co.uk"),
            ("hbbtv.redbutton.de", "redbutton.de"),
            ("xiti.com", "xiti.com"),
        ],
    )
    def test_common_cases(self, host, expected):
        assert registrable_domain(host) == expected

    def test_bare_suffix_returns_itself(self):
        assert registrable_domain("de") == "de"
        assert registrable_domain("co.uk") == "co.uk"

    def test_ip_address_returned_verbatim(self):
        assert registrable_domain("192.168.1.20") == "192.168.1.20"

    def test_trailing_dot_ignored(self):
        assert registrable_domain("www.ard.de.") == "ard.de"

    def test_case_insensitive(self):
        assert registrable_domain("WWW.ARD.DE") == "ard.de"

    def test_empty_raises(self):
        with pytest.raises(URLError):
            registrable_domain("")

    def test_public_suffix_longest_match(self):
        assert public_suffix("x.co.uk") == "co.uk"
        assert public_suffix("x.uk") == "uk"

    def test_same_party(self):
        assert same_party("a.ard.de", "b.ard.de")
        assert not same_party("ard.de", "zdf.de")


HOST_LABEL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=10
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))


class TestProperties:
    @given(labels=st.lists(HOST_LABEL, min_size=1, max_size=5))
    def test_registrable_domain_is_suffix_of_host(self, labels):
        host = ".".join(labels)
        rd = registrable_domain(host)
        assert host == rd or host.endswith("." + rd)

    @given(labels=st.lists(HOST_LABEL, min_size=1, max_size=5))
    def test_registrable_domain_idempotent(self, labels):
        host = ".".join(labels)
        rd = registrable_domain(host)
        assert registrable_domain(rd) == rd

    @given(
        labels=st.lists(HOST_LABEL, min_size=1, max_size=4),
        path=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz/.-_", min_size=0, max_size=20
        ),
    )
    def test_parse_str_roundtrip(self, labels, path):
        host = ".".join(labels)
        raw = f"http://{host}/{path.lstrip('/')}"
        parsed = URL.parse(raw)
        assert URL.parse(str(parsed)) == parsed
