"""World assembly: operators + trackers + channels + network.

``build_world(seed, scale)`` produces a fully wired
:class:`World`: every origin server registered on one simulated
network, every channel carrying its AIT, every application spec in the
registry the TV resolves entry URLs against, and ground-truth metadata
(categories, children's channels, policy templates) for the analyses.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.dvb.ait import simple_ait
from repro.dvb.channel import BroadcastChannel, ChannelCategory, ChannelMeta
from repro.dvb.epg import ProgrammeGuide
from repro.dvb.satellite import Satellite, Transponder
from repro.hbbtv.app import (
    AppScreen,
    EmbeddedService,
    HbbTVApplication,
    ScreenKind,
    ServiceKind,
)
from repro.hbbtv.consent import STANDARD_NOTICE_STYLES
from repro.hbbtv.media_library import MediaLibrary, PrivacyPointer
from repro.keys import Key
from repro.net.http import (
    Headers,
    HttpRequest,
    HttpResponse,
    html_response,
    javascript_response,
    pixel_response,
)
from repro.net.network import Network
from repro.net.server import FunctionServer
from repro.simulation import params
from repro.simulation.operators import (
    OperatorSpec,
    PROFILE_CHILDREN,
    PROFILE_COMMERCIAL_HEAVY,
    PROFILE_COMMERCIAL_LIGHT,
    PROFILE_MINIMAL,
    PROFILE_PUBLIC,
    PROFILE_SHOPPING,
    generate_independent_operators,
    standard_operators,
)
from repro.simulation.policies import PolicyTemplate, render_policy_page
from repro.simulation.thirdparties import TrackerPopulation, build_tracker_population
from repro.trackers.fingerprint import build_fingerprint_script

_CATEGORY_GENRES = {
    ChannelCategory.GENERAL: "series",
    ChannelCategory.MOVIES: "movie",
    ChannelCategory.NEWS: "news",
    ChannelCategory.SPORTS: "sports",
    ChannelCategory.CHILDREN: "kids",
    ChannelCategory.MUSIC: "music",
    ChannelCategory.DOCUMENTARY: "documentary",
    ChannelCategory.SHOPPING: "shopping",
    ChannelCategory.RELIGION: "talk",
    ChannelCategory.REGIONAL: "news",
}


@dataclass
class ChannelGroundTruth:
    """What the generator knows about one channel (for validation)."""

    channel_id: str
    operator: str
    first_party_domain: str
    policy_template: PolicyTemplate | None
    targets_children: bool
    has_notice: bool
    special: str = ""


@dataclass
class World:
    """The fully assembled simulated ecosystem."""

    seed: int
    scale: float
    network: Network = field(default_factory=Network)
    satellites: list[Satellite] = field(default_factory=list)
    trackers: TrackerPopulation = None  # type: ignore[assignment]
    app_registry: dict[str, HbbTVApplication] = field(default_factory=dict)
    #: channel_id → first assigned category.
    categories: dict[str, ChannelCategory] = field(default_factory=dict)
    children_channel_ids: set[str] = field(default_factory=set)
    ground_truth: dict[str, ChannelGroundTruth] = field(default_factory=dict)
    #: Channels in the intended final analysis set (HbbTV + traffic).
    hbbtv_channels: list[BroadcastChannel] = field(default_factory=list)
    #: Everything the antenna can receive (funnel input).
    all_channels: list[BroadcastChannel] = field(default_factory=list)
    #: channel_id → entry host (for the proxy's referrer correction).
    single_channel_hosts: dict[str, str] = field(default_factory=dict)
    #: The manual first-party override the paper applied (one channel
    #: whose first request is an unlisted tracker).
    manual_first_party_overrides: dict[str, str] = field(default_factory=dict)
    #: How to rebuild this world in another process.  Worlds hold live
    #: servers with closures, so they cannot be pickled; sharded
    #: execution ships this recipe to workers instead and calls
    #: :func:`build_world` again.  ``None`` marks a hand-wired world
    #: that only the sequential path can execute.
    recipe: tuple | None = None

    def channel_by_id(self, channel_id: str) -> BroadcastChannel | None:
        for channel in self.all_channels:
            if channel.channel_id == channel_id:
                return channel
        return None


class _OperatorServer(FunctionServer):
    """The first-party platform server of one operator.

    Serves entry documents (setting per-channel session cookies),
    consent endpoints (setting per-channel consent cookies holding Unix
    timestamps), media-library pages, policy documents, optional
    first-party fingerprinting scripts, and house-ad slots.
    """

    def __init__(
        self,
        spec: OperatorSpec,
        channels: list[tuple[str, str]],  # (channel_id, channel_name)
        seed: int,
        serves_policy: bool,
        first_party_fingerprint: bool,
    ) -> None:
        super().__init__(spec.domain)
        self.spec = spec
        self._channel_names = dict(channels)
        self._rng = random.Random(f"operator:{spec.domain}:{seed}")
        self.route("/app/", self._serve_entry)
        self.route("/consent", self._serve_consent)
        self.route("/media/", self._serve_media)
        self.route("/adserver/", self._serve_house_ad)
        self.route("/img/", self._serve_image)
        self.route("/vendors/", self._serve_vendor_page)
        if serves_policy:
            self.route("/policy/", self._serve_policy)
        if first_party_fingerprint:
            self.route("/fp.js", self._serve_fp_script)
            self.route("/collect", self._serve_fp_collect)

    def _channel_from_path(self, request: HttpRequest) -> str:
        from repro.net.url import URL

        parts = URL.parse(request.url).path.split("/")
        return parts[2] if len(parts) > 2 else ""

    def _serve_entry(self, request: HttpRequest) -> HttpResponse:
        from repro.net.url import URL

        channel_id = self._channel_from_path(request)
        if URL.parse(request.url).path.endswith("epg.json"):
            body = b'{"programme": [{"slot": "now"}, {"slot": "next"}]}'
            headers = Headers([("Content-Type", "application/json")])
            return HttpResponse(status=200, headers=headers, body=body)
        name = self._channel_names.get(channel_id, channel_id)
        response = html_response(
            f"<html><body><div class='hbbtv-app'>{name}</div></body></html>"
        )
        # Roughly half the channels run session state over cookies (the
        # paper's General run sees ~0.5 first-party cookies per channel).
        sets_session = zlib.crc32(channel_id.encode()) % 100 < 55
        if sets_session and f"sid_{channel_id}=" not in (
            request.headers.get("Cookie") or ""
        ):
            session = "".join(
                self._rng.choice("0123456789abcdef") for _ in range(16)
            )
            response.headers.add(
                "Set-Cookie",
                f"sid_{channel_id}={session}; Path=/app/{channel_id}",
            )
        return response

    def _serve_consent(self, request: HttpRequest) -> HttpResponse:
        parameters = request.query_params()
        channel_id = parameters.get("ch", "unknown")
        timestamp = parameters.get("t", "0")
        response = html_response("consent stored")
        response.headers.add(
            "Set-Cookie",
            f"consent={timestamp}; Path=/app/{channel_id}; Max-Age=31536000",
        )
        return response

    def _serve_media(self, request: HttpRequest) -> HttpResponse:
        channel_id = self._channel_from_path(request)
        response = html_response(
            "<html><body><ul class='mediathek'><li>Folge 1</li>"
            "<li>Folge 2</li></ul><footer><a href='/policy'>Datenschutz"
            "</a></footer></body></html>"
        )
        # Library visits persist playback state in first-party cookies —
        # the reason the button runs collect far more 1P cookies.
        cookie_header = request.headers.get("Cookie") or ""
        if channel_id and f"mlib_{channel_id}=" not in cookie_header:
            token = "".join(
                self._rng.choice("0123456789abcdef") for _ in range(12)
            )
            response.headers.add(
                "Set-Cookie",
                f"mlib_{channel_id}={token}; Path=/media/{channel_id}",
            )
        if channel_id and zlib.crc32(channel_id.encode()) % 100 < 45:
            response.headers.add(
                "Set-Cookie",
                f"pos_{channel_id}={int(request.timestamp)}; "
                f"Path=/media/{channel_id}",
            )
        return response

    def _serve_house_ad(self, request: HttpRequest) -> HttpResponse:
        return pixel_response()

    #: Self-hosted static assets: big enough to stay clear of the
    #: tracking-pixel size threshold.
    _IMAGE_BYTES = b"\xff\xd8\xff\xe0\x00\x10JFIF" + b"\x00" * 1024

    def _serve_image(self, request: HttpRequest) -> HttpResponse:
        headers = Headers([("Content-Type", "image/jpeg")])
        headers.add("Content-Length", str(len(self._IMAGE_BYTES)))
        return HttpResponse(status=200, headers=headers, body=self._IMAGE_BYTES)

    def _serve_vendor_page(self, request: HttpRequest) -> HttpResponse:
        return html_response(
            "<html><body><h2>Partner</h2><p>Dieser Partner verarbeitet "
            "Daten zu Werbezwecken auf Grundlage Ihrer Einwilligung. "
            "Details entnehmen Sie der Anbieterliste.</p></body></html>"
        )

    def _serve_policy(self, request: HttpRequest) -> HttpResponse:
        channel_id = self._channel_from_path(request)
        template = self.spec.policy_template
        if template is None:
            return html_response("<html><body>Impressum</body></html>")
        name = self._channel_names.get(channel_id, channel_id)
        return html_response(render_policy_page(template, name))

    def _serve_fp_script(self, request: HttpRequest) -> HttpResponse:
        script = build_fingerprint_script(
            ("canvas.toDataURL", "navigator.plugins", "screen.colorDepth"),
            f"http://{self.spec.domain}/collect",
        )
        return javascript_response(script)

    def _serve_fp_collect(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            status=204, headers=Headers([("Content-Type", "text/plain")])
        )


class _PolicyProviderServer(FunctionServer):
    """The smartclip-like host serving policies for several operators."""

    def __init__(self, host: str) -> None:
        super().__init__(host)
        self._documents: dict[str, str] = {}
        self.route("/policy/", self._serve)

    def add_policy(self, channel_id: str, page: str) -> None:
        self._documents[channel_id] = page

    def url_for(self, channel_id: str) -> str:
        return f"http://{self.hosts().pop()}/policy/{channel_id}.html"

    def _serve(self, request: HttpRequest) -> HttpResponse:
        from repro.net.url import URL

        path = URL.parse(request.url).path
        channel_id = path.rsplit("/", 1)[-1].removesuffix(".html")
        page = self._documents.get(channel_id)
        if page is None:
            return html_response("<html><body>404</body></html>", status=404)
        return html_response(page)


def build_world(seed: int = 7, scale: float = 1.0) -> World:
    """Assemble the full ecosystem, deterministically from (seed, scale)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(f"world:{seed}")
    world = World(seed=seed, scale=scale)
    world.trackers = build_tracker_population(seed)
    for service in world.trackers.all_services():
        world.network.register(service)

    policy_provider = _PolicyProviderServer("policies.smartclip.net")
    world.network.register(policy_provider)

    # Manufacturer traffic the study excluded.
    lge = FunctionServer("snu.lge.com")
    lge.route("/", lambda r: html_response("firmware ok"))
    world.network.register(lge)

    operators = standard_operators(scale)
    named_channel_total = sum(op.channel_count for op in operators)
    independents_needed = max(
        0, round(params.FINAL_CHANNELS * scale) - named_channel_total
    )
    operators.extend(generate_independent_operators(rng, independents_needed))

    builder = _ChannelBuilder(world, rng, policy_provider)
    for spec in operators:
        builder.build_operator(spec)
    builder.finalize()

    _plant_dead_endpoints(world)
    _add_funnel_filler_channels(world, rng, scale)
    _distribute_to_satellites(world, rng)
    world.recipe = ("build_world", seed, scale)
    return world


def _plant_dead_endpoints(world: World, count: int = 2) -> None:
    """Point a couple of channels' AITs at dead hosts.

    Real broadcasts carry stale application URLs: the TV's fetch fails
    (the proxy records a 504) and nothing else loads.  These channels
    still pass the traffic funnel — a failed fetch is traffic — which is
    exactly the messiness the paper's pipeline has to live with.
    """
    planted = 0
    for channel in reversed(world.hbbtv_channels):
        if planted >= count:
            break
        truth = world.ground_truth[channel.channel_id]
        if truth.special or truth.targets_children or truth.has_notice:
            continue
        entry = channel.ait.autostart_application()
        world.app_registry.pop(entry.entry_url, None)
        dead_url = (
            f"http://app.{channel.channel_id}-legacy.example/hbbtv/index.html"
        )
        channel.ait = simple_ait(dead_url, name=channel.name)
        truth.special = "dead-endpoint"
        planted += 1


class _ChannelBuilder:
    """Internal: turns operator specs into channels, apps, and servers."""

    def __init__(
        self,
        world: World,
        rng: random.Random,
        policy_provider: _PolicyProviderServer,
    ) -> None:
        self.world = world
        self.rng = rng
        self.policy_provider = policy_provider
        self._used_channel_ids: set[str] = set()
        # Global quota pools (seeded decisions, scale-aware).
        self._fingerprint_quota = _Quota(params.FINGERPRINT_CHANNEL_SHARE)
        self._pixel_quota = _Quota(params.PIXEL_CHANNEL_SHARE)
        self._tech_leak_quota = _Quota(params.TECH_LEAK_SHARE)
        self._behaviour_leak_quota = _Quota(params.BEHAVIOUR_LEAK_SHARE)
        self._notice_quota = _Quota(params.AUTOSTART_NOTICE_SHARE)
        self._sync_channels_left = max(1, round(params.SYNC_CHANNELS * world.scale))
        self._sync_buttons = [Key.RED, Key.GREEN, Key.BLUE]
        self._ga_preloads_left = max(1, round(15 * world.scale))
        self._misattribution_planted = False
        self._exclusive_cursor = 0
        self._fp_first_party_ops: set[str] = set()
        self._tail_cursor = 0

    # -- operators ---------------------------------------------------------------

    def build_operator(self, spec: OperatorSpec) -> None:
        world = self.world
        channels: list[tuple[str, str]] = []
        for index in range(spec.channel_count):
            name = self._channel_name(spec, index)
            channel_id = self._channel_id(name)
            channels.append((channel_id, name))

        first_party_fp = self._wants_first_party_fingerprint(spec)
        serves_policy = spec.policy_template is not None and not spec.policy_host
        server = _OperatorServer(
            spec,
            channels,
            seed=world.seed,
            serves_policy=serves_policy,
            first_party_fingerprint=first_party_fp,
        )
        # Self-hosted asset host (same eTLD+1: no graph edge, but the
        # TLS asset traffic the button runs show).
        server.add_host(f"static.{spec.domain}")
        world.network.register(server)

        for index, (channel_id, name) in enumerate(channels):
            app, channel = self._build_channel(
                spec, server, channel_id, name, index, first_party_fp
            )
            world.app_registry[app.entry_url] = app
            world.hbbtv_channels.append(channel)
            world.all_channels.append(channel)
            world.categories[channel_id] = channel.meta.primary_category
            if spec.targets_children:
                world.children_channel_ids.add(channel_id)
            if spec.channel_count == 1:
                world.single_channel_hosts[channel_id] = spec.domain
            world.ground_truth[channel_id] = ChannelGroundTruth(
                channel_id=channel_id,
                operator=spec.name,
                first_party_domain=spec.domain,
                policy_template=spec.policy_template,
                targets_children=spec.targets_children,
                has_notice=app.notice_style is not None,
                special=spec.special,
            )

    def _wants_first_party_fingerprint(self, spec: OperatorSpec) -> bool:
        if spec.profile not in (PROFILE_COMMERCIAL_HEAVY, PROFILE_CHILDREN):
            return False
        if len(self._fp_first_party_ops) >= params.FINGERPRINT_FIRST_PARTY_PROVIDERS:
            return False
        self._fp_first_party_ops.add(spec.domain)
        return True

    # -- channels -------------------------------------------------------------------

    def _build_channel(
        self,
        spec: OperatorSpec,
        server: _OperatorServer,
        channel_id: str,
        name: str,
        index: int,
        first_party_fp: bool,
    ):
        world = self.world
        rng = self.rng
        domain = spec.domain
        entry_url = f"http://{domain}/app/{channel_id}/index.html"
        policy_url = self._policy_url(spec, channel_id, name)

        services = self._services_for(
            spec, channel_id, first_party_fp and index == 0, policy_url
        )
        notice_style = self._notice_style_for(spec)
        screens = self._screens_for(
            spec, channel_id, policy_url, hybrid=index < spec.hybrid_blue_channels
        )
        storage_writes: tuple[tuple[str, str, str], ...] = ()
        if rng.random() < 0.4:
            storage_writes = ((domain, f"player_{channel_id}", "settings"),)

        app = HbbTVApplication(
            channel_id=channel_id,
            channel_name=name,
            entry_url=entry_url,
            first_party_domain=domain,
            notice_style=notice_style,
            services=services,
            button_screens=screens,
            privacy_policy_url=policy_url,
            storage_writes=storage_writes,
            notice_timeout_seconds=params.NOTICE_TIMEOUT_SECONDS,
            declared_tracking_hours=(
                spec.policy_template.declared_window
                if spec.policy_template is not None
                else None
            ),
        )

        preloads: tuple[str, ...] = ()
        if spec.special == "" and self._ga_preloads_left > 0 and rng.random() < 0.06:
            self._ga_preloads_left -= 1
            preloads = (
                world.trackers.google_analytics.hit_url(channel_id),
            )
        elif not self._misattribution_planted and spec.special == "outlier":
            pass  # the outlier keeps its entry order intact
        elif (
            not self._misattribution_planted
            and spec.channel_count == 1
            and spec.profile == PROFILE_COMMERCIAL_HEAVY
        ):
            # The one channel whose first request is an unlisted tracker:
            # party identification picks the tracker, and the manual
            # override (as in the paper) corrects it.
            self._misattribution_planted = True
            preloads = (
                world.trackers.tvping.beacon_url(channel_id, "signal", "signal"),
            )
            world.manual_first_party_overrides[channel_id] = (
                _etld1_of_domain(domain)
            )

        meta = ChannelMeta(
            name=name,
            channel_id=channel_id,
            language=spec.language,
            categories=self._categories_for(spec, index),
            operator=spec.name,
            is_public_broadcaster=spec.is_public,
            targets_children=spec.targets_children,
        )
        genre = _CATEGORY_GENRES.get(meta.primary_category, "series")
        channel = BroadcastChannel(
            meta=meta,
            ait=simple_ait(entry_url, name=name, preload_urls=preloads),
            guide=ProgrammeGuide.generate(
                random.Random(f"guide:{channel_id}"), preferred_genre=genre
            ),
            broadcast_hours=self._availability_for(spec),
        )
        return app, channel

    def _policy_url(self, spec: OperatorSpec, channel_id: str, name: str) -> str:
        if spec.policy_template is None:
            return ""
        if spec.policy_host:
            page = render_policy_page(spec.policy_template, name)
            self.policy_provider.add_policy(channel_id, page)
            return self.policy_provider.url_for(channel_id)
        return f"http://{spec.domain}/policy/{channel_id}.html"

    def _categories_for(self, spec: OperatorSpec, index: int):
        primary = spec.categories[index % len(spec.categories)]
        if self.rng.random() < 0.2 and len(spec.categories) > 1:
            secondary = spec.categories[(index + 1) % len(spec.categories)]
            return (primary, secondary)
        return (primary,)

    def _availability_for(self, spec: OperatorSpec) -> tuple[int, int]:
        if spec.special:  # archetypes stay always-on
            return (0, 24)
        draw = self.rng.random()
        cumulative = 0.0
        for window, share in params.AVAILABILITY_WINDOWS:
            cumulative += share
            if draw < cumulative:
                return window
        return (0, 24)

    def _notice_style_for(self, spec: OperatorSpec):
        if spec.notice_style_id is None:
            return None
        return STANDARD_NOTICE_STYLES[spec.notice_style_id]

    # -- tracking plans ------------------------------------------------------------------

    def _services_for(
        self,
        spec: OperatorSpec,
        channel_id: str,
        first_party_fp: bool,
        policy_url: str = "",
    ) -> list[EmbeddedService]:
        trackers = self.world.trackers
        rng = self.rng
        services: list[EmbeddedService] = []

        # A minority of channels pull a shared UI toolkit from a real
        # third-party CDN; the rest self-host their assets (keeping CDN
        # nodes from dominating the ecosystem graph, as in the paper).
        # Minimal channels always use the toolkit — it is their only
        # third party, and the shared host keeps the graph connected.
        if spec.profile == PROFILE_MINIMAL or rng.random() < 0.18:
            cdn = rng.choice(trackers.all_cdns())
            services.append(
                EmbeddedService(kind=ServiceKind.STATIC, url=cdn.library_url)
            )

        # Some app shells load a few TLS-hosted startup assets — the
        # trickle of HTTPS the interaction-free General run still shows.
        if rng.random() < 0.3:
            for index in range(rng.randrange(3, 7)):
                services.append(
                    EmbeddedService(
                        kind=ServiceKind.STATIC,
                        url=(
                            f"https://static.{spec.domain}/img/"
                            f"{channel_id}/boot{index}.png"
                        ),
                    )
                )

        # Every running app polls its first party for programme data.
        # This is the steady non-tracking traffic floor that continues
        # even when the app is hidden or a privacy screen is open.
        services.append(
            EmbeddedService(
                kind=ServiceKind.STATIC,
                url=f"http://{spec.domain}/app/{channel_id}/epg.json",
                period_s=rng.choice((20.0, 30.0, 45.0)),
            )
        )

        # Some apps ship their policy document with the startup bundle —
        # that is why the paper finds policies in the traffic of every
        # run, including the interaction-free General run.
        if policy_url and rng.random() < params.POLICY_STARTUP_FETCH_SHARE:
            services.append(
                EmbeddedService(kind=ServiceKind.STATIC, url=policy_url)
            )

        if spec.profile == PROFILE_MINIMAL:
            return services

        if spec.profile == PROFILE_PUBLIC:
            services.append(
                EmbeddedService(
                    kind=ServiceKind.ANALYTICS,
                    service=trackers.ioam,
                    leaks_show_info=True,
                )
            )
            services.append(
                EmbeddedService(
                    kind=ServiceKind.STATIC,
                    url=f"http://{spec.domain}/adserver/house/banner.gif",
                )
            )
            return services

        # Platform groups ship the xiti-like audience-measurement SDK
        # with their shared app (threshold scales with the world so
        # small test worlds keep the platform structure).
        platform_threshold = max(2, round(5 * self.world.scale))
        is_platform = spec.channel_count >= platform_threshold
        if is_platform:
            services.append(
                EmbeddedService(
                    kind=ServiceKind.ANALYTICS,
                    service=trackers.xiti,
                    leaks_show_info=self._behaviour_leak_quota.draw(rng),
                )
            )

        if spec.special == "outlier":
            # The Red-run outlier: a runaway beacon loop behind the red
            # button (59k requests to the tvping-like host in one visit).
            services.append(
                EmbeddedService(
                    kind=ServiceKind.PIXEL,
                    service=trackers.tvping,
                    period_s=params.OUTLIER_PIXEL_PERIOD,
                    after_button=Key.RED,
                )
            )
            services.append(
                EmbeddedService(
                    kind=ServiceKind.PIXEL,
                    service=trackers.tvping,
                    period_s=params.PIXEL_PERIOD_LIGHT,
                    leaks_device_info=True,
                )
            )
            return services

        heavy = spec.profile in (
            PROFILE_COMMERCIAL_HEAVY,
            PROFILE_SHOPPING,
        )

        # The tvping-like service is the platform groups' player SDK:
        # its ~141 channels belong to a dozen operators, which is why
        # its ecosystem-graph degree stays low despite its ubiquity.
        # Independents that track playback use one of the tail pixels.
        is_group = spec.channel_count >= 2
        if is_group or spec.profile == PROFILE_CHILDREN:
            playback_pixel = trackers.tvping
        elif self._pixel_quota.draw(rng):
            playback_pixel = self._primary_tail_pixel(rng)
        else:
            playback_pixel = None
        if playback_pixel is not None:
            services.append(
                EmbeddedService(
                    kind=ServiceKind.PIXEL,
                    service=playback_pixel,
                    period_s=self._pixel_period(rng, heavy),
                    leaks_device_info=self._tech_leak_quota.draw(rng),
                    leaks_show_info=self._behaviour_leak_quota.draw(rng),
                )
            )
            if heavy and rng.random() < params.YELLOW_PIXEL_SHARE:
                # Quiz/game apps behind the yellow button beacon fast.
                services.append(
                    EmbeddedService(
                        kind=ServiceKind.PIXEL,
                        service=playback_pixel,
                        period_s=params.PIXEL_PERIOD_HEAVY,
                        after_button=Key.YELLOW,
                    )
                )

        # The small-tracker tail: one slow always-on service on most
        # commercial channels plus button-gated extras (the paper's
        # "most channels only load a few extra trackers" on buttons).
        children = spec.profile == PROFILE_CHILDREN
        for tail_service, button in self._tail_assignment(rng, heavy, children):
            kind = (
                ServiceKind.PIXEL
                if hasattr(tail_service, "beacon_url")
                else ServiceKind.ANALYTICS
            )
            # Only the first few tail services receive device data:
            # the paper counts just nine third parties getting it.
            leaky_tail = tail_service in trackers.tail_pixels[:3]
            services.append(
                EmbeddedService(
                    kind=kind,
                    service=tail_service,
                    period_s=(
                        params.PIXEL_PERIOD_LIGHT * rng.uniform(1.0, 3.0)
                        if button is None
                        else 0.0
                    ),
                    leaks_device_info=(
                        button is None
                        and leaky_tail
                        and self._tech_leak_quota.draw(rng)
                    ),
                    after_button=button,
                )
            )

        if spec.profile == PROFILE_CHILDREN:
            services.append(
                EmbeddedService(
                    kind=ServiceKind.PIXEL,
                    service=trackers.smartclip,
                    period_s=300.0,
                    leaks_show_info=True,
                )
            )

        # A few group channels run ACR-style content recognition — the
        # one partner the smart-TV block lists actually know.
        if is_group and spec.profile != PROFILE_CHILDREN and rng.random() < 0.10:
            services.append(
                EmbeddedService(
                    kind=ServiceKind.PIXEL,
                    service=trackers.samba_acr,
                    period_s=90.0,
                    leaks_show_info=True,
                )
            )

        if heavy:
            # Button-triggered advertising with periodic slot refresh:
            # this is the EasyList-visible traffic, concentrated in the
            # Red/Yellow/Green runs exactly as in Table III.
            for ad_service in (trackers.doubleclick, trackers.criteo):
                if rng.random() < 0.6:
                    services.append(
                        EmbeddedService(
                            kind=ServiceKind.PIXEL,
                            service=ad_service,
                            period_s=120.0,
                            after_button=Key.RED,
                        )
                    )
            if rng.random() < 0.3:
                services.append(
                    EmbeddedService(
                        kind=ServiceKind.PIXEL,
                        service=trackers.adform,
                        period_s=120.0,
                        after_button=Key.YELLOW,
                    )
                )
            if rng.random() < 0.3:
                services.append(
                    EmbeddedService(
                        kind=ServiceKind.PIXEL,
                        service=trackers.criteo,
                        period_s=180.0,
                        after_button=Key.YELLOW,
                    )
                )
            if rng.random() < 0.25:
                services.append(
                    EmbeddedService(
                        kind=ServiceKind.PIXEL,
                        service=trackers.doubleclick,
                        period_s=180.0,
                        after_button=Key.GREEN,
                    )
                )
            if spec.special == "personalization" or rng.random() < 0.15:
                # Location/brand-targeted ad slots: the circumstantial
                # behavioural-profiling evidence of §V-B (brand names
                # unrelated to the aired programme).
                services.append(
                    EmbeddedService(
                        kind=ServiceKind.AD,
                        url=f"http://{spec.domain}/adserver/spot.gif",
                        extra_params={"brand": rng.choice(("loreal", "nivea"))},
                        after_button=Key.RED,
                    )
                )

        if first_party_fp:
            services.append(
                EmbeddedService(
                    kind=ServiceKind.FINGERPRINT,
                    service=_FirstPartyFingerprintEndpoint(spec.domain),
                    period_s=240.0,
                )
            )
        elif self._fingerprint_quota.draw(rng):
            provider = rng.choice(trackers.fingerprinters)
            red_gated = rng.random() < 0.6
            services.append(
                EmbeddedService(
                    kind=ServiceKind.FINGERPRINT,
                    service=provider,
                    # Red-button apps re-probe the device periodically,
                    # which concentrates fingerprinting in the Red run.
                    period_s=150.0 if red_gated else 0.0,
                    after_button=Key.RED if red_gated else None,
                )
            )

        # Open media libraries rotate their carousels, re-fetching
        # artwork every few seconds: the non-pixel traffic bulk of the
        # Red and Yellow runs.
        for button, share in ((Key.RED, params.RED_LIBRARY_SHARE),
                              (Key.YELLOW, params.YELLOW_CONTENT_SHARE)):
            if rng.random() < share:
                services.append(
                    EmbeddedService(
                        kind=ServiceKind.STATIC,
                        url=(
                            f"http://static.{spec.domain}/img/{channel_id}"
                            f"/carousel-{button.value.lower()}.jpg"
                        ),
                        period_s=rng.choice((8.0, 10.0, 12.0)),
                        after_button=button,
                    )
                )

        # Every channel ends up with at least one *shared* third party
        # (the paper's graph is one connected component); channels whose
        # services are all exotic fall back to a common toolkit CDN.
        common_domains = {
            trackers.tvping.domain,
            trackers.xiti.domain,
            trackers.ioam.domain,
            trackers.doubleclick.domain,
            trackers.criteo.domain,
            trackers.adform.domain,
            trackers.smartclip.domain,
            trackers.samba_acr.domain,
        } | {cdn.domain for cdn in trackers.all_cdns()}
        if not any(s.domain() in common_domains for s in services):
            cdn = rng.choice(trackers.all_cdns())
            services.append(
                EmbeddedService(kind=ServiceKind.STATIC, url=cdn.library_url)
            )

        # Sync participation is assigned to the first qualifying heavy
        # channels so the archetype survives at every world scale.
        if self._sync_channels_left > 0 and heavy:
            self._sync_channels_left -= 1
            button = self._sync_buttons[
                self._sync_channels_left % len(self._sync_buttons)
            ]
            services.append(
                EmbeddedService(
                    kind=ServiceKind.SYNC,
                    service=trackers.sync_pair.initiator,
                    after_button=button,
                )
            )
        return services

    def _primary_tail_pixel(self, rng: random.Random):
        """An independent channel's own playback pixel (Zipf-weighted)."""
        pool = self.world.trackers.tail_pixels[
            : len(self.world.trackers.tail_pixels) // 2
        ]
        weights = [1.0 / (index + 1) for index in range(len(pool))]
        return rng.choices(pool, weights=weights)[0]

    def _pixel_period(self, rng: random.Random, heavy: bool) -> float:
        draw = rng.random()
        if heavy and draw < params.PIXEL_HEAVY_SHARE:
            return params.PIXEL_PERIOD_HEAVY
        if draw < params.PIXEL_HEAVY_SHARE + params.PIXEL_MEDIUM_SHARE:
            return params.PIXEL_PERIOD_MEDIUM
        return params.PIXEL_PERIOD_LIGHT

    def _tail_assignment(
        self, rng: random.Random, heavy: bool, children: bool = False
    ):
        """Pick this channel's tail trackers with Zipf-ish popularity.

        Early tail services end up on many channels, late ones on a
        single channel — producing the Figure 5 long tail and Table II's
        third-party diversity growth on button runs.
        """
        trackers = self.world.trackers
        pool = trackers.popular_tail()
        if not pool:
            return []
        weights = [1.0 / (index + 1) for index in range(len(pool))]
        assignment = []
        if not children and rng.random() < 0.5:
            assignment.append((rng.choices(pool, weights=weights)[0], None))
        # Some channels carry one tracker nobody else uses — the
        # single-edge leaf domains in the ecosystem graph (paper: 39).
        exclusive = trackers.exclusive_tail()
        if not children and rng.random() < 0.3 and self._exclusive_cursor < len(
            exclusive
        ):
            assignment.append(
                (exclusive[self._exclusive_cursor], rng.choice((None, Key.RED)))
            )
            self._exclusive_cursor += 1
        if children:
            # Children's channels carry the platform SDK plus an ad
            # partner, but few exotic extras — which is exactly why the
            # paper finds no significant difference to other channels.
            gated_count = rng.randrange(0, 2)
        else:
            gated_count = rng.randrange(1, 7 if heavy else 5)
        buttons = (Key.RED, Key.YELLOW, Key.GREEN, Key.BLUE)
        for _ in range(gated_count):
            # Button-loaded apps reach deep into the tail (uniform draw):
            # rarely-seen services surface only on interaction runs.
            # Pixels dominate the tail, as they do the paper's tracker
            # census (47 pixel eTLD+1s vs a handful of analytics hosts).
            popular_pixels = trackers.tail_pixels[: len(trackers.tail_pixels) // 2]
            popular_analytics = trackers.tail_analytics[
                : len(trackers.tail_analytics) // 2
            ]
            if rng.random() < 0.7:
                service = rng.choice(popular_pixels)
            else:
                service = rng.choice(popular_analytics)
            button = rng.choices(buttons, weights=(0.4, 0.3, 0.2, 0.1))[0]
            assignment.append((service, button))
        return assignment

    # -- screens ------------------------------------------------------------------------------

    def _screens_for(
        self,
        spec: OperatorSpec,
        channel_id: str,
        policy_url: str,
        hybrid: bool,
    ) -> dict[Key, AppScreen]:
        rng = self.rng
        trackers = self.world.trackers
        screens: dict[Key, AppScreen] = {}
        domain = spec.domain

        if spec.special == "outlier" or rng.random() < params.RED_LIBRARY_SHARE:
            # Library pages pull a grid of thumbnails from the TLS CDN —
            # the bulk of the HTTPS traffic the button runs show.
            tile_count = rng.randrange(14, 30)
            assets = [
                f"https://static.{domain}/img/{channel_id}/tile{i}.jpg"
                for i in range(tile_count)
            ]
            if rng.random() < 0.25:
                assets.append(trackers.cdn_http.image_url)
            library = MediaLibrary(
                page_url=f"http://{domain}/media/{channel_id}/index.html",
                item_urls=tuple(
                    f"http://{domain}/media/{channel_id}/item{i}.html"
                    for i in range(3)
                ),
                asset_urls=tuple(assets),
                pointer=(
                    PrivacyPointer(
                        label="Datenschutz",
                        prominent=rng.random() < 0.15,
                        target_policy_url=policy_url,
                    )
                    if policy_url
                    else None
                ),
                prefetches_policy=(
                    bool(policy_url)
                    and rng.random() < params.RED_POLICY_PREFETCH
                ),
            )
            screens[Key.RED] = AppScreen(
                kind=ScreenKind.MEDIA_LIBRARY, media_library=library
            )
        elif rng.random() < params.CTM_SCREEN_SHARE:
            screens[Key.RED] = AppScreen(
                kind=ScreenKind.CHANNEL_TECH_MESSAGE,
                caption="Anwendung derzeit nicht verfügbar",
            )

        if rng.random() < params.YELLOW_CONTENT_SHARE:
            yellow_assets = [
                f"https://static.{domain}/img/{channel_id}/y{i}.jpg"
                for i in range(rng.randrange(3, 9))
            ]
            if rng.random() < 0.2:
                yellow_assets.append(trackers.cdn_http.stylesheet_url)
            library = MediaLibrary(
                page_url=f"http://{domain}/media/{channel_id}/guide.html",
                item_urls=tuple(
                    f"http://{domain}/media/{channel_id}/day{i}.html"
                    for i in range(2)
                ),
                asset_urls=tuple(yellow_assets),
                pointer=(
                    PrivacyPointer(target_policy_url=policy_url)
                    if policy_url and rng.random() < 0.6
                    else None
                ),
                prefetches_policy=(
                    bool(policy_url)
                    and rng.random() < params.YELLOW_POLICY_PREFETCH
                ),
            )
            screens[Key.YELLOW] = AppScreen(
                kind=ScreenKind.MEDIA_LIBRARY, media_library=library
            )
        elif rng.random() < 0.3:
            screens[Key.YELLOW] = AppScreen(
                kind=ScreenKind.TEXT_PAGE, caption="Programminfo"
            )
        elif rng.random() < params.CTM_SCREEN_SHARE:
            screens[Key.YELLOW] = AppScreen(
                kind=ScreenKind.CHANNEL_TECH_MESSAGE,
                caption="Kein Videotext-Dienst verfügbar",
            )

        # Consent-manager page bundles ride TLS (the CMP endpoints are
        # much of the HTTPS traffic in the Blue run).
        cmp_bundle = [
            f"https://static.{domain}/img/{channel_id}/cmp{i}.js"
            for i in range(rng.randrange(2, 6))
        ]
        # Opening the privacy screen also pulls the partner list: one
        # page per vendor, the bulk of the Blue run's non-pixel traffic.
        cmp_bundle.extend(
            f"http://{domain}/vendors/{channel_id}/v{i}.html"
            for i in range(rng.randrange(60, 140))
        )
        cmp_bundle = tuple(cmp_bundle)
        if hybrid and policy_url:
            screens[Key.BLUE] = AppScreen(
                kind=ScreenKind.PRIVACY_SETTINGS,
                policy_url=policy_url,
                show_cookie_controls=True,
                load_urls=cmp_bundle,
            )
        elif spec.notice_style_id in (9, 10):
            screens[Key.BLUE] = AppScreen(
                kind=ScreenKind.PRIVACY_SETTINGS,
                policy_url=policy_url,
                load_urls=cmp_bundle,
            )
        elif policy_url and rng.random() < params.BLUE_PRIVACY_SHARE:
            kind = (
                ScreenKind.PRIVACY_SETTINGS
                if spec.notice_style_id is not None
                else ScreenKind.PRIVACY_POLICY
            )
            screens[Key.BLUE] = AppScreen(
                kind=kind, policy_url=policy_url, load_urls=cmp_bundle
            )

        if rng.random() < 0.55:
            # Green-button text services ship small TLS page bundles:
            # little absolute traffic, but a high HTTPS share in the
            # low-volume Green run.
            bundle = [
                f"https://static.{domain}/img/{channel_id}/green{i}.png"
                for i in range(rng.randrange(3, 9))
            ]
            if policy_url and rng.random() < params.GREEN_POLICY_FETCH:
                bundle.append(policy_url)
            screens[Key.GREEN] = AppScreen(
                kind=ScreenKind.TEXT_PAGE,
                caption="Wetter & Verkehr",
                load_urls=tuple(bundle),
            )
        elif rng.random() < params.CTM_SCREEN_SHARE:
            screens[Key.GREEN] = AppScreen(
                kind=ScreenKind.CHANNEL_TECH_MESSAGE,
                caption="Dienst nicht verfügbar",
            )
        return screens

    # -- names ---------------------------------------------------------------------------------

    def _channel_name(self, spec: OperatorSpec, index: int) -> str:
        if index < len(spec.channel_names):
            return spec.channel_names[index]
        return f"{spec.name} {index + 1}"

    def _channel_id(self, name: str) -> str:
        base = (
            name.lower()
            .replace(" ", "-")
            .replace("&", "und")
            .replace(".", "")
        )
        candidate = base
        suffix = 2
        while candidate in self._used_channel_ids:
            candidate = f"{base}-{suffix}"
            suffix += 1
        self._used_channel_ids.add(candidate)
        return candidate

    def finalize(self) -> None:
        """Post-assembly checks."""
        if not self._misattribution_planted and self.world.hbbtv_channels:
            # Tiny worlds may lack a qualifying independent; that is fine.
            pass


@dataclass
class _FirstPartyFingerprintEndpoint:
    """Duck-typed fingerprint backend hosted on a first-party domain."""

    domain: str

    @property
    def script_url(self) -> str:
        return f"http://{self.domain}/fp.js"

    @property
    def collect_url(self) -> str:
        return f"http://{self.domain}/collect"


class _Quota:
    """A probability gate (seeded draws against a fixed share)."""

    def __init__(self, share: float) -> None:
        self.share = share

    def draw(self, rng: random.Random) -> bool:
        return rng.random() < self.share


def _etld1_of_domain(domain: str) -> str:
    from repro.net.url import registrable_domain

    return registrable_domain(domain)


def _add_funnel_filler_channels(
    world: World, rng: random.Random, scale: float
) -> None:
    """Channels the §IV-B funnel discards: radio, encrypted, invisible,
    traffic-less TV channels, and one IPTV channel."""

    def scaled(count: int) -> int:
        return max(1, round(count * scale))

    def add(name: str, **meta_kwargs) -> BroadcastChannel:
        meta = ChannelMeta(name=name, channel_id=f"filler-{len(world.all_channels)}",
                           **meta_kwargs)
        channel = BroadcastChannel(meta=meta)
        world.all_channels.append(channel)
        return channel

    for index in range(scaled(params.RADIO_CHANNELS)):
        add(f"Radio {index + 1}", is_radio=True)
    for index in range(scaled(params.ENCRYPTED_TV_CHANNELS)):
        add(f"Pay TV {index + 1}", is_encrypted=True)
    invisible_count = scaled(params.INVISIBLE_OR_UNNAMED)
    for index in range(invisible_count):
        if index % 5 == 0:
            add("")  # empty-name channels
        else:
            add(f"Test Signal {index + 1}", is_invisible=True)
    for index in range(scaled(params.NO_TRAFFIC_CHANNELS)):
        add(f"Analog Relikt {index + 1}")  # TV channel, no AIT, no traffic

    # One IPTV channel: it has HbbTV-style traffic but is excluded by
    # the last funnel step.
    iptv_meta = ChannelMeta(name="IPTV Stream Eins", channel_id="iptv-stream-eins")
    iptv = BroadcastChannel(meta=iptv_meta, is_iptv=True)
    iptv.ait = simple_ait("http://cdn.hbbtv-assets.de/lib/toolkit.js")
    world.all_channels.append(iptv)


def _distribute_to_satellites(world: World, rng: random.Random) -> None:
    """Spread every channel over the three satellites' transponders."""
    satellites = [
        Satellite("Astra 1L", 19.2),
        Satellite("Hot Bird 13E", 13.0),
        Satellite("Eutelsat 16E", 16.0),
    ]
    weights = (0.315, 0.35, 0.335)
    transponders = []
    for satellite in satellites:
        for index in range(8):
            transponders.append(
                (
                    satellite,
                    satellite.add_transponder(
                        Transponder(10700 + 40 * index, "H" if index % 2 else "V")
                    ),
                )
            )
    for channel in world.all_channels:
        satellite = rng.choices(satellites, weights=weights)[0]
        transponder = rng.choice(
            [tp for sat, tp in transponders if sat is satellite]
        )
        transponder.add_channel(channel)
    world.satellites = satellites
