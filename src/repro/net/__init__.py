"""Web substrate: URLs, HTTP messages, cookies, local storage, and a
simulated Internet that dispatches requests to origin servers.

This package stands in for the real network stack the paper observed
through mitmproxy.  Every higher layer (HbbTV apps, the TV browser, the
interception proxy) speaks in the types defined here.
"""

from repro.net.cookies import Cookie, CookieJar, parse_set_cookie
from repro.net.faults import (
    ConnectionReset,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    NxdomainFlap,
)
from repro.net.http import (
    Headers,
    HttpRequest,
    HttpResponse,
    STATUS_REASONS,
)
from repro.net.network import Network, RoutingError
from repro.net.server import FunctionServer, Route, Server
from repro.net.storage import LocalStorage, StorageEntry
from repro.net.url import URL, registrable_domain, same_party

__all__ = [
    "URL",
    "registrable_domain",
    "same_party",
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "STATUS_REASONS",
    "Cookie",
    "CookieJar",
    "parse_set_cookie",
    "LocalStorage",
    "StorageEntry",
    "Network",
    "RoutingError",
    "FaultKind",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "ConnectionReset",
    "NxdomainFlap",
    "Server",
    "Route",
    "FunctionServer",
]
