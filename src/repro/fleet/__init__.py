"""Population-scale fleet simulation: N households watching concurrently.

The paper measures one rooted TV; this package scales the same
deterministic measurement stack to an *audience*.  A fleet study gives
each simulated household a distinct seeded device identity (device ID,
user-agent variation, its own cookie jar), a viewing habit drawn
deterministically from the EPG (genre preferences and a daypart
schedule spanning the paper's 5 PM–6 AM window), and a consent
disposition — then executes every household on the existing
channel-sharded executor and merges the per-household datasets under
the established permutation-invariant monoid laws.  The fleet study
digest is a pure function of ``(fleet_seed, n_households, scale, plan,
n_shards)``; a fleet of one household reduces byte-for-byte to the
single-TV :func:`~repro.simulation.study.run_study` path.
"""

from __future__ import annotations

from repro.fleet.dataset import FleetStudyDataset, merge_fleet_datasets
from repro.fleet.household import (
    DEFAULT_HABIT,
    HouseholdSpec,
    ViewingHabit,
    plan_fleet,
)
from repro.fleet.study import FleetContext, HouseholdResult, run_fleet_study

__all__ = [
    "DEFAULT_HABIT",
    "FleetContext",
    "FleetStudyDataset",
    "HouseholdResult",
    "HouseholdSpec",
    "ViewingHabit",
    "merge_fleet_datasets",
    "plan_fleet",
    "run_fleet_study",
]
