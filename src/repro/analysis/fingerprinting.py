"""TV-fingerprinting detection (§V-D2).

Flags JavaScript responses whose body mentions APIs commonly used for
fingerprinting (Canvas, WebGL, AudioContext, plugin/hardware probing) or
known fingerprinting libraries (Fingerprint2).  As in the paper, this is
a content-based lower bound — scripts are not executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.proxy.flow import Flow

#: API and library markers searched for in script bodies.
FINGERPRINT_API_MARKERS = (
    "canvas.toDataURL",
    "toDataURL",
    "getContext('webgl')",
    'getContext("webgl")',
    "AudioContext",
    "OfflineAudioContext",
    "navigator.plugins",
    "navigator.hardwareConcurrency",
    "screen.colorDepth",
    "Fingerprint2",
    "fingerprintjs",
)


def is_fingerprinting_script(flow: Flow) -> bool:
    """JS response containing at least one fingerprinting marker."""
    if not flow.response.is_javascript:
        return False
    body = flow.response.body_text()
    return any(marker in body for marker in FINGERPRINT_API_MARKERS)


def is_fingerprint_related(flow: Flow) -> bool:
    """Script *or* the collect beacon a fingerprint script fires.

    The submission carries the computed fingerprint (``fp=`` parameter),
    which the traffic analysis counts as a fingerprinting request.
    """
    if is_fingerprinting_script(flow):
        return True
    return "fp=" in flow.url and "/collect" in flow.url


@dataclass
class FingerprintReport:
    """Aggregate fingerprinting statistics for one flow set."""

    script_count: int = 0
    related_request_count: int = 0
    provider_etld1s: set[str] = field(default_factory=set)
    channels: set[str] = field(default_factory=set)
    #: Requests where the providing host belongs to the channel's own
    #: first party (the paper: 88% of fingerprinting was first-party).
    first_party_requests: int = 0


def analyze_fingerprinting(
    flows: Iterable[Flow],
    first_parties: dict[str, str] | None = None,
) -> FingerprintReport:
    """Build the §V-D2 fingerprinting report."""
    report = FingerprintReport()
    first_parties = first_parties or {}
    for flow in flows:
        script = is_fingerprinting_script(flow)
        related = script or is_fingerprint_related(flow)
        if not related:
            continue
        report.related_request_count += 1
        if script:
            report.script_count += 1
        report.provider_etld1s.add(flow.etld1)
        if flow.channel_id:
            report.channels.add(flow.channel_id)
            if first_parties.get(flow.channel_id) == flow.etld1:
                report.first_party_requests += 1
    return report


# -- pass registration -------------------------------------------------------------

from repro.analysis.passes import analysis_pass  # noqa: E402


@analysis_pass("fingerprinting", version=1, deps=("parties",))
def run(dataset, ctx) -> FingerprintReport:
    """Pass entry point: §V-D2 fingerprinting over every run's flows."""
    return analyze_fingerprinting(
        dataset.all_flows(), ctx.upstream("parties").first_parties
    )
