"""Tests for local storage, origin servers, and network routing."""

import pytest

from repro.net.http import HttpRequest, html_response
from repro.net.network import Network, RoutingError
from repro.net.server import FunctionServer
from repro.net.storage import LocalStorage


class TestLocalStorage:
    def test_set_get(self):
        storage = LocalStorage()
        storage.set_item("https://a.de", "k", "v")
        assert storage.get_item("https://a.de", "k") == "v"

    def test_origins_partitioned(self):
        storage = LocalStorage()
        storage.set_item("https://a.de", "k", "va")
        storage.set_item("https://b.de", "k", "vb")
        assert storage.get_item("https://a.de", "k") == "va"
        assert storage.get_item("https://b.de", "k") == "vb"
        assert len(storage) == 2

    def test_overwrite_keeps_single_slot(self):
        storage = LocalStorage()
        storage.set_item("https://a.de", "k", "1")
        storage.set_item("https://a.de", "k", "2")
        assert len(storage) == 1
        assert storage.get_item("https://a.de", "k") == "2"

    def test_remove(self):
        storage = LocalStorage()
        storage.set_item("https://a.de", "k", "v")
        storage.remove_item("https://a.de", "k")
        assert storage.get_item("https://a.de", "k") is None

    def test_entries_for_origin(self):
        storage = LocalStorage()
        storage.set_item("https://a.de", "k1", "1")
        storage.set_item("https://a.de", "k2", "2")
        storage.set_item("https://b.de", "k1", "3")
        assert len(storage.entries_for("https://a.de")) == 2

    def test_entry_etld1(self):
        storage = LocalStorage()
        entry = storage.set_item("https://cdn.tracker.com", "id", "x")
        assert entry.etld1 == "tracker.com"
        assert entry.host == "cdn.tracker.com"

    def test_clear(self):
        storage = LocalStorage()
        storage.set_item("https://a.de", "k", "v")
        storage.clear()
        assert len(storage) == 0
        assert storage.origins() == set()

    def test_missing_item_is_none(self):
        assert LocalStorage().get_item("https://a.de", "nope") is None


class TestFunctionServer:
    def make_server(self):
        server = FunctionServer("app.channel.de")
        server.route("/", lambda r: html_response("root"))
        server.route("/hbbtv", lambda r: html_response("app"))
        return server

    def test_longest_prefix_wins(self):
        server = self.make_server()
        response = server.handle(
            HttpRequest("GET", "http://app.channel.de/hbbtv/index.html")
        )
        assert response.body == b"app"

    def test_root_fallback(self):
        server = self.make_server()
        response = server.handle(HttpRequest("GET", "http://app.channel.de/x"))
        assert response.body == b"root"

    def test_404_when_no_route(self):
        server = FunctionServer("h.de")
        assert server.handle(HttpRequest("GET", "http://h.de/x")).status == 404

    def test_multiple_hosts(self):
        server = FunctionServer({"a.de", "b.de"})
        assert server.hosts() == {"a.de", "b.de"}
        server.add_host("c.de")
        assert "c.de" in server.hosts()


class TestNetwork:
    def test_deliver(self):
        network = Network()
        server = FunctionServer("h.de")
        server.route("/", lambda r: html_response("hello"))
        network.register(server)
        response = network.deliver(HttpRequest("GET", "http://h.de/"))
        assert response.body == b"hello"
        assert network.request_count == 1

    def test_unknown_host_raises(self):
        network = Network()
        with pytest.raises(RoutingError):
            network.deliver(HttpRequest("GET", "http://nowhere.de/"))

    def test_duplicate_host_rejected(self):
        network = Network()
        network.register(FunctionServer("h.de"))
        with pytest.raises(ValueError):
            network.register(FunctionServer("h.de"))

    def test_knows_host(self):
        network = Network()
        network.register(FunctionServer("h.de"))
        assert network.knows_host("H.DE")
        assert not network.knows_host("x.de")

    def test_response_timestamp_copied_from_request(self):
        network = Network()
        server = FunctionServer("h.de")
        server.route("/", lambda r: html_response("x"))
        network.register(server)
        response = network.deliver(
            HttpRequest("GET", "http://h.de/", timestamp=42.5)
        )
        assert response.timestamp == 42.5
