"""Canonical tagged-JSON codec for analysis artifacts.

The disk tier of the content-addressed cache stores pass results as
JSON, but analysis results are rich Python values — nested dataclasses,
enums, sets, tuples, byte strings, dicts with non-string keys.  This
codec maps that value space onto plain JSON losslessly and
*canonically*:

* every non-scalar container is tagged (``{"$": "tuple", ...}``), so
  decoding never guesses;
* sets serialize in a deterministic order (sorted by their members'
  canonical JSON), making the encoding digestible;
* dicts keep insertion order via an explicit pair list, so a decoded
  report iterates exactly like the original;
* dataclasses and enums carry a ``module:qualname`` type tag and are
  reconstructed without calling ``__init__`` (fields are restored
  verbatim, which also covers frozen and ``init=False`` fields).

Decoding only ever imports types from the ``repro`` package — a cache
file can name no other constructor, so a tampered store cannot be used
to instantiate arbitrary classes.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import hashlib
import importlib
import json
from array import array
from typing import Any

#: Bumped whenever the encoding itself changes shape; part of every
#: disk envelope so old stores read as misses instead of mis-decoding.
CODEC_VERSION = 1


class CodecError(ValueError):
    """A value cannot be encoded, or an encoding cannot be decoded."""


def _type_tag(value: Any) -> str:
    cls = type(value)
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_type(tag: str) -> type:
    module_name, _, qualname = tag.partition(":")
    if not module_name.startswith("repro"):
        raise CodecError(f"refusing to resolve non-repro type {tag!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not isinstance(obj, type):
        raise CodecError(f"{tag!r} does not name a class")
    return obj


def encode(value: Any) -> Any:
    """Map a Python analysis value onto tagged, JSON-ready structures."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"$": "bytes", "v": base64.b64encode(value).decode("ascii")}
    if isinstance(value, array):
        # Typed numeric columns (the columnar dataset backend).  The
        # item values — not the machine representation — are the
        # content, so the encoding stays canonical across platforms
        # with different typecode widths.
        return {"$": "arr", "t": value.typecode, "v": value.tolist()}
    if isinstance(value, enum.Enum):
        return {"$": "enum", "t": _type_tag(value), "v": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "$": "dc",
            "t": _type_tag(value),
            "v": {
                f.name: encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {"$": "tuple", "v": [encode(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        encoded = [encode(item) for item in value]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        kind = "frozenset" if isinstance(value, frozenset) else "set"
        return {"$": kind, "v": encoded}
    if isinstance(value, dict):
        return {
            "$": "dict",
            "v": [[encode(k), encode(v)] for k, v in value.items()],
        }
    if isinstance(value, list):
        return [encode(item) for item in value]
    raise CodecError(
        f"cannot encode {type(value).__name__!r} for the artifact cache"
    )


def decode(encoded: Any) -> Any:
    """Reverse :func:`encode`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):
        return [decode(item) for item in encoded]
    if not isinstance(encoded, dict):
        raise CodecError(f"unexpected encoded value: {encoded!r}")
    tag = encoded.get("$")
    if tag == "bytes":
        return base64.b64decode(encoded["v"])
    if tag == "arr":
        return array(encoded["t"], encoded["v"])
    if tag == "enum":
        cls = _resolve_type(encoded["t"])
        return cls[encoded["v"]]
    if tag == "dc":
        cls = _resolve_type(encoded["t"])
        if not dataclasses.is_dataclass(cls):
            raise CodecError(f"{encoded['t']!r} is not a dataclass")
        instance = object.__new__(cls)
        for name, field_value in encoded["v"].items():
            object.__setattr__(instance, name, decode(field_value))
        return instance
    if tag == "tuple":
        return tuple(decode(item) for item in encoded["v"])
    if tag == "set":
        return {decode(item) for item in encoded["v"]}
    if tag == "frozenset":
        return frozenset(decode(item) for item in encoded["v"])
    if tag == "dict":
        return {decode(k): decode(v) for k, v in encoded["v"]}
    raise CodecError(f"unknown codec tag {tag!r}")


def canonical_json(encoded: Any) -> str:
    """The one canonical rendering of an encoded value."""
    return json.dumps(
        encoded, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def payload_digest(encoded: Any) -> str:
    """Content hash of an encoded payload (disk-store integrity)."""
    return hashlib.sha256(canonical_json(encoded).encode("utf-8")).hexdigest()
