"""The privacy-policy pipeline (paper §VII).

Collection from recorded traffic → boilerplate removal → language
detection → policy/other classification → SHA-1 and SimHash dedup →
data-practice annotation (MAPP-style taxonomy + GDPR dictionary) →
declared-vs-observed discrepancy audit (incl. the 5 PM–6 AM case).
"""

from repro.policy.corpus import PolicyDocument, collect_policies
from repro.policy.dedup import dedup_exact, simhash, simhash_groups
from repro.policy.discrepancy import (
    Discrepancy,
    DiscrepancyReport,
    audit_discrepancies,
)
from repro.policy.extraction import extract_main_text
from repro.policy.langdetect import detect_language
from repro.policy.classifier import PolicyClassifier
from repro.policy.gdpr import GdprDictionary
from repro.policy.practices import PracticeAnnotation, annotate_practices

__all__ = [
    "PolicyDocument",
    "collect_policies",
    "extract_main_text",
    "detect_language",
    "PolicyClassifier",
    "dedup_exact",
    "simhash",
    "simhash_groups",
    "PracticeAnnotation",
    "annotate_practices",
    "GdprDictionary",
    "Discrepancy",
    "DiscrepancyReport",
    "audit_discrepancies",
]
