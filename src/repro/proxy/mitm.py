"""The interception proxy (mitmproxy stand-in).

Sits between the TV and the simulated network: every request the TV
browser issues passes through :meth:`InterceptionProxy.request`, which
delivers it, records a :class:`Flow` with channel attribution, and
filters manufacturer traffic the study excluded (lge.com et al.).
HTTPS flows are marked as TLS-intercepted — none of the channels in the
study validated certificates, so interception always succeeded.
"""

from __future__ import annotations

from repro.core.resilience import CircuitOpenError
from repro.net.faults import ConnectionReset
from repro.net.http import Headers, HttpRequest, HttpResponse
from repro.net.netsim import (
    DEGRADED_HEADER,
    EXPIRED_HEADER,
    QUEUE_DELAY_HEADER,
    QUEUE_DEPTH_HEADER,
    SHED_HEADER,
    DeadlineExpired,
)
from repro.net.network import Network, RoutingError
from repro.net.url import URL
from repro.obs.metrics import SIZE_BUCKETS
from repro.proxy.attribution import ChannelAttributor
from repro.proxy.flow import Flow


class InterceptionProxy:
    """Records all TV traffic while forwarding it to the network.

    With a :class:`~repro.core.resilience.TransportResilience` attached,
    delivery goes through its retry/circuit-breaker loop; without one
    (the default) the request path is byte-for-byte the original.  With
    an :class:`~repro.obs.Observability` bundle attached, every exchange
    leaves a deterministic telemetry footprint (flow counters, response
    size histogram, a ``request`` trace point stamped at request time);
    the telemetry only *reads* the exchange, so the recorded flows are
    byte-for-byte identical either way.
    """

    def __init__(
        self,
        network: Network,
        attributor: ChannelAttributor | None = None,
        excluded_etld1s: frozenset[str] | set[str] = frozenset({"lge.com"}),
        resilience=None,
        obs=None,
    ) -> None:
        self.network = network
        self.attributor = attributor or ChannelAttributor()
        self.excluded_etld1s = set(excluded_etld1s)
        self.resilience = resilience
        self.obs = obs
        self.flows: list[Flow] = []
        self.excluded_flow_count = 0
        self.gateway_timeout_count = 0
        self.reset_count = 0
        self.deadline_expired_count = 0
        self.shed_count = 0
        #: Every upstream routing failure as ``(host, simulated time)``
        #: — stamped with the failure's *simulated* timestamp (netsim
        #: defers delivery, so that can be well after issue time), which
        #: is how :class:`~repro.core.health.RunHealth` records when a
        #: host was unreachable instead of just that it was.
        self.routing_failures: list[tuple[str, float]] = []
        self.running = False

    # -- lifecycle (mirrors "initiate mitmproxy" / teardown) ------------------

    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    def drain_flows(self) -> list[Flow]:
        """Return and clear the recorded flows (end-of-run upload)."""
        drained = self.flows
        self.flows = []
        return drained

    # -- transport interface used by the TV browser ----------------------------

    def request(self, request: HttpRequest) -> HttpResponse:
        """Forward one request, recording the exchange."""
        if not self.running:
            raise RuntimeError("proxy is not running")
        try:
            if self.resilience is not None:
                response = self.resilience.deliver(self.network, request)
            else:
                response = self.network.deliver(request)
        except ConnectionReset:
            # Retries exhausted on an upstream reset: the TV sees a bad
            # gateway; the flow is still recorded.
            self.reset_count += 1
            if self.obs is not None:
                self.obs.metrics.inc("proxy.connection_resets")
            response = HttpResponse(
                status=502,
                headers=Headers([("Content-Type", "text/plain")]),
                body=b"connection reset by peer",
                timestamp=request.timestamp,
            )
        except DeadlineExpired as error:
            # Congestion, not a dead host: the client abandoned the
            # request after retries kept blowing the deadline.  The
            # synthesized 504 carries the expiry's simulated time and
            # the expired marker so the dataset keeps the distinction.
            self.gateway_timeout_count += 1
            self.deadline_expired_count += 1
            self.routing_failures.append((error.host, error.at))
            if self.obs is not None:
                self.obs.metrics.inc("proxy.gateway_timeouts")
                self.obs.metrics.inc("proxy.deadline_expired")
            response = HttpResponse(
                status=504,
                headers=Headers(
                    [("Content-Type", "text/plain"), (EXPIRED_HEADER, "1")]
                ),
                body=b"upstream deadline expired",
                timestamp=error.at,
            )
        except RoutingError as error:
            # Dead endpoint: the TV sees a gateway timeout; the flow is
            # still recorded (the study sees such failures too).  When
            # netsim deferred delivery the error carries the simulated
            # time it actually surfaced; without netsim the failure is
            # instantaneous and issue time is the truth.
            failed_at = getattr(error, "at", None)
            if failed_at is None:
                failed_at = request.timestamp
            self.gateway_timeout_count += 1
            if not isinstance(error, CircuitOpenError):
                # Breaker fast-fails are client-side policy, already
                # accounted in breaker_fast_fails; the ledger records
                # *upstream* unreachability (NXDOMAIN, flaps).
                self.routing_failures.append(
                    (URL.parse(request.url).host, failed_at)
                )
            if self.obs is not None:
                self.obs.metrics.inc("proxy.gateway_timeouts")
            response = HttpResponse(
                status=504,
                headers=Headers([("Content-Type", "text/plain")]),
                body=b"upstream unreachable",
                timestamp=failed_at,
            )
        if SHED_HEADER in response.headers:
            self.shed_count += 1
            if self.obs is not None:
                self.obs.metrics.inc("proxy.shed_responses")
        etld1 = URL.parse(request.url).etld1
        if self.obs is not None:
            self._record_telemetry(request, response, etld1)
        if etld1 in self.excluded_etld1s:
            self.excluded_flow_count += 1
            if self.obs is not None:
                self.obs.metrics.inc("proxy.excluded_flows")
            return response
        channel_id, channel_name = self.attributor.attribute(request)
        self.flows.append(
            Flow(
                request=request,
                response=response,
                channel_id=channel_id,
                channel_name=channel_name,
                intercepted_tls=request.is_https,
            )
        )
        return response

    def _record_telemetry(
        self, request: HttpRequest, response: HttpResponse, etld1: str
    ) -> None:
        """The per-exchange telemetry footprint (obs attached only)."""
        metrics = self.obs.metrics
        metrics.inc(
            "proxy.requests",
            scheme="https" if request.is_https else "http",
        )
        metrics.inc("proxy.responses", status=f"{response.status // 100}xx")
        metrics.observe(
            "proxy.response_bytes", float(response.size), bounds=SIZE_BUCKETS
        )
        set_cookies = len(response.set_cookie_headers())
        if set_cookies and response.status < 500:
            # Mirrors the browser's jar semantics: 5xx responses (incl.
            # synthesized gateway failures) never mutate the cookie jar.
            metrics.inc("proxy.cookie_mutations", set_cookies)
        extra = {}
        # Netsim congestion attributes ride on the span only when the
        # transport stamped them — the off path's points are unchanged.
        delay = response.headers.get(QUEUE_DELAY_HEADER)
        if delay is not None:
            extra["queue_delay"] = float(delay)
        depth = response.headers.get(QUEUE_DEPTH_HEADER)
        if depth is not None:
            extra["queue_depth"] = int(depth)
        if SHED_HEADER in response.headers:
            extra["shed"] = True
        if DEGRADED_HEADER in response.headers:
            extra["degraded"] = True
        if EXPIRED_HEADER in response.headers:
            extra["expired"] = True
        self.obs.tracer.point(
            "request",
            at=request.timestamp,
            host=URL.parse(request.url).host,
            etld1=etld1,
            status=response.status,
            https=request.is_https,
            **extra,
        )

    # -- notifications from the remote-control script ----------------------------

    def notify_channel_switch(
        self, channel_id: str, channel_name: str, at: float
    ) -> None:
        self.attributor.set_channel(channel_id, channel_name, at)
