"""The six-step channel-selection pipeline (§IV-B).

Starts from everything the antenna scan received (3,575 channels in the
paper) and narrows down to the HbbTV-capable free-to-air TV channels the
study measures (396), using TV metadata for the first three steps and an
exploratory traffic measurement for the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DEFAULT_CONFIG, MeasurementConfig
from repro.dvb.channel import BroadcastChannel
from repro.proxy.mitm import InterceptionProxy
from repro.tv.webos import WebOSApi, WebOSApiError


@dataclass
class FilteringReport:
    """Counts per filtering step, mirroring the §IV-B funnel."""

    received: int = 0
    tv_channels: int = 0  # step 1: not radio
    unencrypted: int = 0  # step 2: no CI module needed
    visible_named: int = 0  # step 3: signal present, non-empty name
    with_traffic: int = 0  # step 5: HTTP(S) traffic observed
    final: int = 0  # step 6: not IPTV

    @classmethod
    def merged(cls, reports: "list[FilteringReport]") -> "FilteringReport":
        """Fold per-shard funnels into the study-wide funnel.

        Each shard filters a disjoint slice of the received channels,
        so every step count is a plain sum.
        """
        if not reports:
            raise ValueError("cannot merge zero filtering reports")
        return cls(
            received=sum(r.received for r in reports),
            tv_channels=sum(r.tv_channels for r in reports),
            unencrypted=sum(r.unencrypted for r in reports),
            visible_named=sum(r.visible_named for r in reports),
            with_traffic=sum(r.with_traffic for r in reports),
            final=sum(r.final for r in reports),
        )

    def as_rows(self) -> list[tuple[str, int, float]]:
        """(step, count, share-of-received) rows for pretty-printing."""
        if self.received == 0:
            return []
        steps = [
            ("received", self.received),
            ("TV (not radio)", self.tv_channels),
            ("free-to-air", self.unencrypted),
            ("visible & named", self.visible_named),
            ("with HTTP(S) traffic", self.with_traffic),
            ("final (non-IPTV)", self.final),
        ]
        return [(name, count, count / self.received) for name, count in steps]


class ChannelFilterPipeline:
    """Runs the metadata filters and the exploratory measurement."""

    def __init__(
        self,
        api: WebOSApi,
        proxy: InterceptionProxy,
        config: MeasurementConfig = DEFAULT_CONFIG,
    ) -> None:
        self.api = api
        self.proxy = proxy
        self.config = config
        self.report = FilteringReport()

    # -- steps 1-3: metadata ----------------------------------------------------

    def metadata_filter(
        self, channels: list[BroadcastChannel]
    ) -> list[BroadcastChannel]:
        """Steps 1–3: drop radio, encrypted, invisible/unnamed channels."""
        self.report.received = len(channels)
        tv_channels = [c for c in channels if not c.meta.is_radio]
        self.report.tv_channels = len(tv_channels)
        unencrypted = [c for c in tv_channels if not c.meta.is_encrypted]
        self.report.unencrypted = len(unencrypted)
        visible = [
            c
            for c in unencrypted
            if not c.meta.is_invisible and c.meta.name.strip()
        ]
        self.report.visible_named = len(visible)
        return visible

    # -- steps 4-6: exploratory traffic measurement -------------------------------

    def exploratory_filter(
        self, channels: list[BroadcastChannel]
    ) -> list[BroadcastChannel]:
        """Steps 4–6: watch each channel and keep those with traffic."""
        tv = self.api.tv
        with_traffic = []
        deferred: list[BroadcastChannel] = []
        for channel in channels:
            if not channel.is_on_air(tv.clock.hour_of_day()):
                # Channels with restricted airing times are re-probed at
                # the end of the sweep — the paper extended its schedule
                # to catch exactly these.
                deferred.append(channel)
                continue
            if self._probe(channel):
                with_traffic.append(channel)
        for channel in deferred:
            if channel.is_on_air(tv.clock.hour_of_day()) and self._probe(channel):
                with_traffic.append(channel)
        self.report.with_traffic = len(with_traffic)
        final = [c for c in with_traffic if not c.is_iptv]
        self.report.final = len(final)
        return final

    def _probe(self, channel: BroadcastChannel) -> bool:
        """Watch one channel for the exploratory interval; True if it
        produced any HTTP(S) traffic.  Probe flows are checked and
        discarded channel by channel so the sweep stays memory-bounded.
        """
        tv = self.api.tv
        self.proxy.notify_channel_switch(
            channel.channel_id, channel.name, tv.clock.now
        )
        try:
            self.api.switch_channel(channel)
        except WebOSApiError:
            self.api.restart_tv()
            self.api.tv.connect_wifi()
            self.api.switch_channel(channel)
        tv.wait(self.config.exploratory_watch_seconds)
        probe_flows = self.proxy.drain_flows()
        return any(f.channel_id == channel.channel_id for f in probe_flows)

    # -- the whole funnel ------------------------------------------------------------

    def run(self, channels: list[BroadcastChannel]) -> list[BroadcastChannel]:
        """Execute all six steps and return the final channel set."""
        visible = self.metadata_filter(channels)
        final = self.exploratory_filter(visible)
        # The exploratory traffic is only a probe; drop it so the actual
        # measurement runs start from a clean slate.
        self.proxy.drain_flows()
        self.api.tv.wipe()
        return final
