"""Table II — third-party cookie-setting parties per run.

Paper: General 36 parties / 167 cookies (mean 2.31); Red 107 / 560
(3.59); Green 77 / 287 (3.69); Blue 47 / 189 (2.04); Yellow 88 / 300
(3.2).  Shape: Red has the most cookie-setting third parties, General
the fewest; means of a few cookies per party with sizable spread.
"""

from benchmarks.conftest import emit
from repro.analysis.cookies import third_party_cookie_table


def test_table2_third_party_cookies(benchmark, dataset):
    records_by_run = {
        name: run.cookie_records for name, run in dataset.runs.items()
    }
    rows = benchmark(third_party_cookie_table, records_by_run)

    lines = [
        f"{'Meas. Run':<10} {'# 3Ps':>6} {'# 3P Cookies':>13} "
        f"{'Mean':>6} {'Min':>5} {'Max':>5} {'SD':>6}"
    ]
    for row in rows:
        stats = row.cookies_per_party
        lines.append(
            f"{row.run_name:<10} {row.third_party_count:>6} "
            f"{row.third_party_cookie_count:>13} {stats.mean:>6.2f} "
            f"{stats.minimum:>5.0f} {stats.maximum:>5.0f} {stats.std_dev:>6.2f}"
        )
    emit("Table II — Third-party cookie use by measurement run", "\n".join(lines))

    by_name = {row.run_name: row for row in rows}
    counts = sorted(r.third_party_count for r in rows)
    # Interaction runs surface the most cookie-setting third parties;
    # General sits at the bottom of the field (with Blue, whose privacy
    # screens keep apps quiet).
    assert by_name["Red"].third_party_count >= counts[-2]
    assert by_name["General"].third_party_count <= counts[1]
    for row in rows:
        assert row.cookies_per_party.mean >= 1.0
