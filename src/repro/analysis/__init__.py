"""Analyses over the study dataset (paper §V).

Each module reproduces one analysis: party identification, personal-data
leakage, cookies and cookie syncing, filter-list coverage, tracking
pixels, fingerprinting, per-channel and per-category tracking, the
ecosystem graph, and the statistics behind the significance claims.
"""
