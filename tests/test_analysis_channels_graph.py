"""Tests for channel/category analyses, the children case study,
statistics, and the ecosystem graph."""

import pytest

from repro.analysis.channels import (
    category_effect_test,
    category_report,
    channel_effect_test,
    channel_level_report,
)
from repro.analysis.children import children_case_study
from repro.analysis.graph import (
    analyze_graph,
    build_ecosystem_graph,
    domain_degree,
)
from repro.analysis.stats import (
    DescriptiveStats,
    EffectSize,
    kruskal_wallis,
    mann_whitney,
)
from repro.dvb.channel import ChannelCategory
from repro.net.http import HttpRequest, html_response, pixel_response
from repro.proxy.flow import Flow


def pixel_flow(url, channel, run="General", ts=0.0):
    return Flow(
        request=HttpRequest("GET", url, timestamp=ts),
        response=pixel_response(),
        channel_id=channel,
        run_name=run,
    )


def html_flow(url, channel, ts=0.0):
    return Flow(
        request=HttpRequest("GET", url, timestamp=ts),
        response=html_response("<html>app</html>"),
        channel_id=channel,
    )


class TestStats:
    def test_kruskal_significant_difference(self):
        low = [1.0, 2.0, 1.5, 2.2, 1.8] * 4
        high = [10.0, 11.0, 9.5, 10.5, 12.0] * 4
        result = kruskal_wallis([low, high])
        assert result.significant
        assert result.effect_size is EffectSize.LARGE

    def test_kruskal_no_difference(self):
        same = [[1.0, 2.0, 3.0, 4.0, 5.0], [1.1, 2.1, 2.9, 4.1, 4.9]]
        result = kruskal_wallis(same)
        assert not result.significant

    def test_kruskal_requires_two_groups(self):
        with pytest.raises(ValueError):
            kruskal_wallis([[1.0, 2.0]])

    def test_kruskal_skips_empty_groups(self):
        result = kruskal_wallis([[1.0, 2.0, 3.0], [], [4.0, 5.0, 6.0]])
        assert result.group_count == 2

    def test_effect_size_classification(self):
        assert EffectSize.classify(0.01) is EffectSize.SMALL
        assert EffectSize.classify(0.10) is EffectSize.MODERATE
        assert EffectSize.classify(0.20) is EffectSize.LARGE
        assert EffectSize.classify(0.06) is EffectSize.SMALL
        assert EffectSize.classify(0.14) is EffectSize.LARGE

    def test_mann_whitney(self):
        result = mann_whitney([1, 2, 3, 2, 1] * 3, [9, 8, 7, 9, 8] * 3)
        assert result.significant
        similar = mann_whitney([1, 2, 3, 4], [2, 3, 4, 1])
        assert not similar.significant

    def test_mann_whitney_empty_raises(self):
        with pytest.raises(ValueError):
            mann_whitney([], [1.0])

    def test_descriptive_stats(self):
        stats = DescriptiveStats.of([1, 2, 3, 4])
        assert stats.mean == 2.5
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.count == 4
        assert DescriptiveStats.of([]).count == 0


class TestChannelLevel:
    def build_flows(self):
        flows = []
        for i in range(5):
            flows.append(pixel_flow(f"http://t{i}.de/p.gif", "quiet", run="General"))
        for i in range(50):
            flows.append(
                pixel_flow("http://heavy.de/p.gif", "noisy", run="Red")
            )
        flows.append(html_flow("http://app.de/x", "clean"))
        return flows

    def test_profiles_only_tracking_channels(self):
        report = channel_level_report(self.build_flows())
        assert set(report.profiles) == {"quiet", "noisy"}

    def test_outlier(self):
        report = channel_level_report(self.build_flows())
        outlier = report.outlier()
        assert outlier.channel_id == "noisy"
        assert outlier.tracking_requests == 50

    def test_tracker_counts(self):
        report = channel_level_report(self.build_flows())
        assert report.profiles["quiet"].tracker_count == 5
        assert report.profiles["noisy"].tracker_count == 1

    def test_series_sorted_descending(self):
        report = channel_level_report(self.build_flows())
        series = report.tracker_count_series()
        assert series == sorted(series, reverse=True)

    def test_top10_share(self):
        report = channel_level_report(self.build_flows())
        assert report.top10_request_share() == 1.0

    def test_channel_effect_test(self):
        flows = []
        for run in ("General", "Red", "Green"):
            for _ in range(4):
                flows.append(pixel_flow("http://t.de/p.gif", "a", run=run))
            for _ in range(40):
                flows.append(pixel_flow("http://t.de/p.gif", "b", run=run))
        report = channel_level_report(flows)
        result = channel_effect_test(report)
        assert result.observation_count == 6


class TestCategories:
    def test_grouping_by_first_category(self):
        flows = [
            pixel_flow("http://t.de/p.gif", "gen1"),
            pixel_flow("http://t.de/p.gif", "gen1"),
            pixel_flow("http://t.de/p.gif", "kids1"),
        ]
        report = channel_level_report(flows)
        categories = {
            "gen1": ChannelCategory.GENERAL,
            "kids1": ChannelCategory.CHILDREN,
        }
        by_category = category_report(report, categories)
        assert by_category.rows["General"].tracking_requests == 2
        assert by_category.rows["Children"].channel_count == 1

    def test_unknown_category_bucket(self):
        flows = [pixel_flow("http://t.de/p.gif", "mystery")]
        report = channel_level_report(flows)
        by_category = category_report(report, {})
        assert "Other/Unknown" in by_category.rows

    def test_top5_share(self):
        flows = [pixel_flow("http://t.de/p.gif", f"c{i}") for i in range(3)]
        report = channel_level_report(flows)
        categories = {
            "c0": ChannelCategory.GENERAL,
            "c1": ChannelCategory.NEWS,
            "c2": ChannelCategory.MUSIC,
        }
        by_category = category_report(report, categories)
        assert by_category.top5_request_share() == 1.0
        assert by_category.top5_channel_count() == 3

    def test_category_effect_test(self):
        flows = []
        for i in range(6):
            flows.extend(
                pixel_flow(f"http://t{j}.de/p.gif", f"gen{i}")
                for j in range(5)
            )
            flows.append(pixel_flow("http://t.de/p.gif", f"kid{i}"))
        report = channel_level_report(flows)
        categories = {f"gen{i}": ChannelCategory.GENERAL for i in range(6)}
        categories.update(
            {f"kid{i}": ChannelCategory.CHILDREN for i in range(6)}
        )
        result = category_effect_test(category_report(report, categories))
        assert result.significant


class TestChildren:
    def test_children_tracked_like_others(self):
        flows = []
        for i in range(8):
            flows.extend(
                pixel_flow(f"http://t{j}.de/p.gif", f"kid{i}") for j in range(3)
            )
            flows.extend(
                pixel_flow(f"http://t{j}.de/p.gif", f"adult{i}")
                for j in range(3)
            )
        report = channel_level_report(flows)
        result = children_case_study(
            report, {f"kid{i}" for i in range(8)}
        )
        assert result.children_are_tracked
        assert result.tracks_like_everyone_else
        assert result.tracking_requests_on_children == 24

    def test_targeting_cookie_count(self):
        from repro.core.dataset import CookieRecord
        from repro.net.cookies import Cookie

        flows = [pixel_flow("http://t.de/p.gif", "kid0")]
        report = channel_level_report(flows)
        records = [
            CookieRecord(
                cookie=Cookie(name="IDE", value="x", domain="doubleclick.net"),
                channel_id="kid0",
                run_name="Red",
                first_party_etld1="kids.de",
            )
        ]
        result = children_case_study(report, {"kid0"}, records)
        assert result.targeting_cookies_on_children == 1


class TestGraph:
    def build(self):
        flows = [
            # channel a: first party fp-a.de, third parties t1/t2
            html_flow("http://fp-a.de/app", "a", ts=1.0),
            pixel_flow("http://t1.com/p.gif", "a", ts=2.0),
            pixel_flow("http://t2.com/p.gif", "a", ts=3.0),
            # channel b: first party fp-b.de, shares t1
            html_flow("http://fp-b.de/app", "b", ts=1.0),
            pixel_flow("http://t1.com/p.gif", "b", ts=2.0),
        ]
        return build_ecosystem_graph(flows)

    def test_structure(self):
        graph = self.build()
        report = analyze_graph(graph)
        # 2 channels + 2 first parties + 2 third parties
        assert report.node_count == 6
        assert report.is_single_component  # t1 bridges both families

    def test_channel_nodes_have_degree_one(self):
        graph = self.build()
        assert graph.degree("channel:a") == 1
        assert graph.degree("channel:b") == 1

    def test_shared_third_party_degree(self):
        graph = self.build()
        assert domain_degree(graph, "t1.com") == 2
        assert domain_degree(graph, "t2.com") == 1
        assert domain_degree(graph, "absent.de") == 0

    def test_single_edge_domains(self):
        report = analyze_graph(self.build())
        assert report.single_edge_domains == 1  # t2 only

    def test_empty_graph(self):
        import networkx as nx

        report = analyze_graph(nx.Graph())
        assert report.node_count == 0
        assert report.component_count == 0

    def test_channels_without_first_party_excluded(self):
        flows = [pixel_flow("http://track.tvping.com/p.gif", "")]
        graph = build_ecosystem_graph(flows)
        assert graph.number_of_nodes() == 0
