"""Experiment E2 — personal-data collection (§V-B).

Paper: 112 channels (29%) send technical device data to nine third
parties; 94 channels send the current show's genre; 23,671 requests
carry personal data; circumstantial brand evidence (e.g. L'Oréal)
appears in ad traffic.
"""

from benchmarks.conftest import emit


def test_e2_leakage(benchmark, study, resolve):
    report = benchmark(lambda: resolve("leakage")["leakage"])
    measured = study.dataset.channels_measured()

    tech_share = len(report.channels_leaking_technical) / len(measured)
    behaviour_share = len(report.channels_leaking_behavioural) / len(measured)
    lines = [
        f"channels leaking technical data: "
        f"{len(report.channels_leaking_technical)} ({tech_share:.1%}; "
        "paper: 112 / 29%)",
        f"third parties receiving device data: "
        f"{len(report.technical_receivers)} (paper: 9)",
        f"channels leaking show/genre: "
        f"{len(report.channels_leaking_behavioural)} ({behaviour_share:.1%}; "
        "paper: 94)",
        f"requests with personal data: "
        f"{report.requests_with_personal_data:,} (paper: 23,671)",
        f"brand evidence: {sorted(report.brands_seen)} "
        f"in {report.requests_with_brand_evidence} requests "
        "(paper: L'Oréal-type brands)",
    ]
    emit("E2 — Information collected by HbbTV channels", "\n".join(lines))

    assert 0.05 < tech_share < 0.6
    assert 1 <= len(report.technical_receivers) <= 15
    assert report.channels_leaking_behavioural
    assert report.brands_seen
