"""The measurement framework (paper §IV).

Orchestrates the antenna scan, the six-step channel-selection pipeline,
the remote-control script, and the five measurement runs, producing a
:class:`~repro.core.dataset.StudyDataset` that every analysis consumes.
"""

from repro.core.columnar import (
    BACKENDS,
    ColumnarRunDataset,
    ColumnarStudyDataset,
    to_columnar,
    to_objects,
    validate_backend,
)
from repro.core.config import MeasurementConfig
from repro.core.dataset import (
    CookieRecord,
    RunDataset,
    StudyDataset,
    merge_parallel_run_datasets,
    merge_run_datasets,
    serialize_study_dataset,
    study_digest,
)
from repro.core.filtering import ChannelFilterPipeline, FilteringReport
from repro.core.framework import MeasurementFramework
from repro.core.health import HealthMonitor, RunHealth, StudyHealth
from repro.core.remote import RemoteControlScript
from repro.core.report import DatasetOverview, overview_table
from repro.core.resilience import (
    ChannelFailure,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    StudyResilience,
    Watchdog,
)
from repro.core.runs import RunSpec, ensure_runs, standard_runs
from repro.core.shard import (
    DEFAULT_SHARDS,
    ShardResult,
    ShardSpec,
    ShardTask,
    execute_shard,
    merge_shard_results,
    run_sharded_study,
    shard_channel_ids,
)

__all__ = [
    "MeasurementConfig",
    "RunSpec",
    "standard_runs",
    "ChannelFilterPipeline",
    "FilteringReport",
    "RemoteControlScript",
    "MeasurementFramework",
    "StudyDataset",
    "RunDataset",
    "CookieRecord",
    "merge_run_datasets",
    "DatasetOverview",
    "overview_table",
    "RetryPolicy",
    "CircuitBreaker",
    "Watchdog",
    "ResiliencePolicy",
    "StudyResilience",
    "ChannelFailure",
    "HealthMonitor",
    "RunHealth",
    "StudyHealth",
    "merge_parallel_run_datasets",
    "serialize_study_dataset",
    "study_digest",
    "ensure_runs",
    "DEFAULT_SHARDS",
    "ShardSpec",
    "ShardTask",
    "ShardResult",
    "shard_channel_ids",
    "execute_shard",
    "merge_shard_results",
    "run_sharded_study",
    "BACKENDS",
    "ColumnarRunDataset",
    "ColumnarStudyDataset",
    "to_columnar",
    "to_objects",
    "validate_backend",
]
