"""Property-based invariants across core data structures (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.filterlists import AbpFilterList, HostsFilterList
from repro.clock import SimClock
from repro.core.dataset import RunDataset, StudyDataset
from repro.core.shard import (
    ShardResult,
    ShardSpec,
    merge_shard_results,
    shard_channel_ids,
)
from repro.hbbtv.consent import (
    ConsentChoice,
    ConsentNoticeMachine,
    STANDARD_NOTICE_STYLES,
)
from repro.keys import Key
from repro.obs import MetricsRegistry, merge_metrics
from repro.obs.metrics import SHARE_BUCKETS
from repro.policy.dedup import hamming_distance, simhash
from repro.policy.extraction import extract_main_text
from repro.policy.langdetect import detect_language

ANY_KEY = st.sampled_from(list(Key))
STYLE = st.sampled_from(list(STANDARD_NOTICE_STYLES.values()))


class TestConsentMachineProperties:
    @given(style=STYLE, keys=st.lists(ANY_KEY, max_size=40))
    def test_any_key_sequence_is_safe(self, style, keys):
        """No key sequence crashes the machine or corrupts its state."""
        machine = ConsentNoticeMachine(style)
        for key in keys:
            machine.press(key)
        assert machine.layer in (1, 2, 3)
        assert isinstance(machine.choice, ConsentChoice)
        if not machine.dismissed:
            # A live machine can always render itself.
            state = machine.screen_state()
            assert state.notice_layer == machine.layer

    @given(style=STYLE, keys=st.lists(ANY_KEY, max_size=40))
    def test_dismissal_is_terminal(self, style, keys):
        machine = ConsentNoticeMachine(style)
        for key in keys:
            machine.press(key)
        if machine.dismissed:
            choice = machine.choice
            machine.press(Key.ENTER)
            assert machine.choice is choice

    @given(style=STYLE)
    def test_focus_always_valid(self, style):
        machine = ConsentNoticeMachine(style)
        for _ in range(30):
            machine.press(Key.RIGHT)
            if machine.dismissed:
                break
            assert machine.focused in machine._focusables()


class TestFilterListProperties:
    @given(text=st.text(max_size=400))
    def test_abp_parser_never_crashes(self, text):
        rules = AbpFilterList("fuzz", text)
        assert rules.matches("http://example.de/path") in (True, False)

    @given(text=st.text(max_size=400))
    def test_hosts_parser_never_crashes(self, text):
        rules = HostsFilterList("fuzz", text)
        assert rules.matches_host("example.de") in (True, False)


class TestPolicyPipelineProperties:
    @given(html=st.text(max_size=800))
    def test_extraction_never_crashes(self, html):
        text = extract_main_text(html)
        assert isinstance(text, str)

    @given(text=st.text(max_size=600))
    def test_langdetect_returns_known_label(self, text):
        assert detect_language(text) in ("de", "en", "de/en", "unknown")

    @given(a=st.text(max_size=300), b=st.text(max_size=300))
    def test_simhash_distance_symmetric_and_bounded(self, a, b):
        distance = hamming_distance(simhash(a), simhash(b))
        assert 0 <= distance <= 64
        assert distance == hamming_distance(simhash(b), simhash(a))

    @given(a=st.text(max_size=300))
    def test_simhash_self_distance_zero(self, a):
        assert hamming_distance(simhash(a), simhash(a)) == 0


CHANNEL_ID_SETS = st.lists(
    st.text(alphabet="abcdefghijklmnop0123456789-", min_size=1, max_size=12),
    unique=True,
    max_size=50,
)
SHARD_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
SHARD_COUNTS = st.integers(min_value=1, max_value=8)


class TestShardProperties:
    @given(ids=CHANNEL_ID_SETS, seed=SHARD_SEEDS, n=SHARD_COUNTS)
    def test_every_channel_lands_in_exactly_one_shard(self, ids, seed, n):
        shards = shard_channel_ids(ids, seed, n)
        assert len(shards) == n
        assigned = [cid for shard in shards for cid in shard.channel_ids]
        assert sorted(assigned) == sorted(ids)
        assert len(assigned) == len(set(assigned))
        sizes = [len(shard.channel_ids) for shard in shards]
        if sizes:
            assert max(sizes) - min(sizes) <= 1

    @given(ids=CHANNEL_ID_SETS, seed=SHARD_SEEDS, n=SHARD_COUNTS)
    def test_partition_is_stable_and_order_independent(self, ids, seed, n):
        """Re-running with the same (seed, n_shards) — even from a
        differently ordered corpus — reproduces the partition."""
        first = shard_channel_ids(ids, seed, n)
        assert shard_channel_ids(ids, seed, n) == first
        assert shard_channel_ids(list(reversed(ids)), seed, n) == first
        shuffled = list(ids)
        random.Random(seed).shuffle(shuffled)
        assert shard_channel_ids(shuffled, seed, n) == first

    @given(
        ids=CHANNEL_ID_SETS,
        seed=SHARD_SEEDS,
        n=SHARD_COUNTS,
        order_seed=SHARD_SEEDS,
    )
    def test_merge_of_shards_is_permutation_invariant(
        self, ids, seed, n, order_seed
    ):
        """Worker completion order must never leak into the merge."""
        results = []
        for shard in shard_channel_ids(ids, seed, n):
            dataset = StudyDataset()
            dataset.add_run(
                RunDataset(
                    run_name="General",
                    channels_measured=list(shard.channel_ids),
                    interaction_count=len(shard.channel_ids),
                )
            )
            results.append(
                ShardResult(
                    shard=shard,
                    dataset=dataset,
                    period_end=float(shard.index),
                )
            )
        reference = merge_shard_results(results)
        shuffled = list(results)
        random.Random(order_seed).shuffle(shuffled)
        merged = merge_shard_results(shuffled)
        assert (
            merged.dataset.runs["General"].channels_measured
            == reference.dataset.runs["General"].channels_measured
        )
        assert (
            merged.dataset.runs["General"].interaction_count
            == reference.dataset.runs["General"].interaction_count
            == len(ids)
        )
        assert merged.period_end == reference.period_end


# Exactly-representable values (quarters): every partial sum is exact in
# binary floating point, so the merge's fsum can never round and the
# algebraic laws below hold as dict equality, not approximately.
EXACT_VALUES = st.integers(min_value=0, max_value=1000).map(lambda n: n * 0.25)
METRIC_OPS = st.lists(
    st.tuples(
        st.sampled_from(["inc", "gauge", "observe"]),
        st.sampled_from(["flows", "retries", "share"]),
        EXACT_VALUES,
        st.sampled_from([(), (("run", "General"),), (("run", "Red"),)]),
    ),
    max_size=20,
)


def _registry_from(ops) -> MetricsRegistry:
    registry = MetricsRegistry()
    for kind, name, value, labels in ops:
        label_kwargs = dict(labels)
        if kind == "inc":
            registry.inc(name, value, **label_kwargs)
        elif kind == "gauge":
            registry.gauge_max(name, value, **label_kwargs)
        else:
            registry.observe(name, value, bounds=SHARE_BUCKETS, **label_kwargs)
    return registry


REGISTRIES = METRIC_OPS.map(_registry_from)


class TestMetricsMergeProperties:
    """merge_metrics forms a commutative monoid on registries.

    These are exactly the laws that make per-shard collectors safe: any
    grouping (associativity) and any completion order (commutativity)
    of the same shard registries must produce the same snapshot, and an
    idle shard (identity) must not perturb the merge.
    """

    @given(a=REGISTRIES, b=REGISTRIES, c=REGISTRIES)
    @settings(max_examples=50)
    def test_merge_is_associative(self, a, b, c):
        left = merge_metrics([merge_metrics([a, b]), c]).snapshot()
        right = merge_metrics([a, merge_metrics([b, c])]).snapshot()
        flat = merge_metrics([a, b, c]).snapshot()
        assert left == right == flat

    @given(a=REGISTRIES, b=REGISTRIES)
    @settings(max_examples=50)
    def test_merge_is_commutative(self, a, b):
        assert (
            merge_metrics([a, b]).snapshot()
            == merge_metrics([b, a]).snapshot()
        )

    @given(a=REGISTRIES)
    @settings(max_examples=50)
    def test_empty_registry_is_the_identity(self, a):
        alone = merge_metrics([a]).snapshot()
        assert merge_metrics([MetricsRegistry(), a]).snapshot() == alone
        assert merge_metrics([a, MetricsRegistry()]).snapshot() == alone
        assert alone == a.snapshot()

    @given(a=REGISTRIES)
    @settings(max_examples=50)
    def test_merge_never_mutates_its_inputs(self, a):
        before = a.snapshot()
        b = MetricsRegistry()
        b.inc("flows", 3)
        b.observe("share", 0.5, bounds=SHARE_BUCKETS)
        merge_metrics([a, b])
        assert a.snapshot() == before


class TestClockProperties:
    @given(deltas=st.lists(st.floats(min_value=0, max_value=1e6), max_size=30))
    def test_clock_monotone(self, deltas):
        clock = SimClock(start=0.0)
        previous = clock.now
        for delta in deltas:
            clock.advance(delta)
            assert clock.now >= previous
            previous = clock.now
        assert 0 <= clock.hour_of_day() < 24
