"""Synthetic-world generation.

Builds the simulated European HbbTV ecosystem the measurement framework
runs against: satellites and channels (including everything the
filtering funnel discards), broadcaster groups with their consent-notice
brandings and privacy policies, and the third-party tracker population.
All generation is seeded and calibrated against the paper's reported
numbers (see :mod:`repro.simulation.params`).
"""

from repro.simulation.study import (
    StudyContext,
    clear_study_cache,
    default_study,
    fault_plan_for_world,
    make_context,
    run_study,
)
from repro.simulation.world import World, build_world

__all__ = [
    "World",
    "build_world",
    "StudyContext",
    "make_context",
    "run_study",
    "default_study",
    "clear_study_cache",
    "fault_plan_for_world",
]
