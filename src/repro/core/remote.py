"""The remote-control script (§IV-C).

Implements the per-channel watch protocol on top of the webOS API:
switch, notify the proxy, settle for 10 s, screenshot, then screenshot
every 60 s; on color-button runs, press the button after settling, wait,
and replay the run's fixed interaction sequence (screenshotting after
every press).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DEFAULT_CONFIG, MeasurementConfig
from repro.core.runs import RunSpec
from repro.dvb.channel import BroadcastChannel
from repro.proxy.mitm import InterceptionProxy
from repro.tv.screenshot import Screenshot
from repro.tv.webos import WebOSApi, WebOSApiError


@dataclass
class ChannelVisit:
    """What one channel visit produced."""

    channel_id: str
    channel_name: str
    screenshots: list[Screenshot] = field(default_factory=list)
    key_presses: int = 0
    skipped_off_air: bool = False


class RemoteControlScript:
    """Drives the TV through one run's per-channel protocol."""

    def __init__(
        self,
        api: WebOSApi,
        proxy: InterceptionProxy,
        config: MeasurementConfig = DEFAULT_CONFIG,
    ) -> None:
        self.api = api
        self.proxy = proxy
        self.config = config

    def watch_channel(
        self, channel: BroadcastChannel, run: RunSpec
    ) -> ChannelVisit:
        """Execute the full watch protocol for one channel."""
        tv = self.api.tv
        visit = ChannelVisit(channel.channel_id, channel.name)
        if not channel.is_on_air(tv.clock.hour_of_day()):
            visit.skipped_off_air = True
            return visit

        # Push the channel to the proxy, then switch.
        self.proxy.notify_channel_switch(
            channel.channel_id, channel.name, tv.clock.now
        )
        self._call(lambda: self.api.switch_channel(channel))

        config = self.config
        tv.wait(config.settle_seconds)
        visit.screenshots.append(self._shot())

        # Total stay on the channel: settle time + watch time (the paper
        # watches "at least 910 s": 10 s settle + 900 s = 16 screenshots).
        elapsed = config.settle_seconds
        if run.is_interactive:
            assert run.color_button is not None
            self._call(lambda: self.api.send_key(run.color_button))
            visit.key_presses += 1
            tv.wait(config.post_button_seconds)
            elapsed += config.post_button_seconds
            for key in run.interaction_sequence:
                self._call(lambda k=key: self.api.send_key(k))
                visit.key_presses += 1
                tv.wait(config.interaction_gap_seconds)
                elapsed += config.interaction_gap_seconds
                visit.screenshots.append(self._shot())
            total_watch = config.settle_seconds + config.color_run_watch_seconds
        else:
            total_watch = config.settle_seconds + config.watch_seconds

        # Keep watching, screenshotting every interval, until the end.
        while elapsed + config.screenshot_interval_seconds <= total_watch:
            tv.wait(config.screenshot_interval_seconds)
            elapsed += config.screenshot_interval_seconds
            visit.screenshots.append(self._shot())
        if elapsed < total_watch:
            tv.wait(total_watch - elapsed)

        return visit

    def _shot(self) -> Screenshot:
        return self._call(self.api.take_screenshot)

    def _call(self, operation):
        """Run an API operation, power-cycling the TV if the API wedges.

        The paper had to physically restart the TV when its API stopped
        responding; the retry-after-restart here models that recovery.
        """
        try:
            return operation()
        except WebOSApiError:
            self.api.restart_tv()
            self.api.tv.connect_wifi()
            return operation()
