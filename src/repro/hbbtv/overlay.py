"""Screen overlay model — what a screenshot of the TV shows.

The consent analysis (paper §VI) hand-annotated 41,617 screenshots with
a codebook of overlay types.  Our screenshots are *structured*: they
carry the overlay state directly, so the annotation pipeline classifies
them with the same codebook deterministically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OverlayKind(enum.Enum):
    """First-round codebook: what kind of HbbTV overlay is on screen."""

    NO_SIGNAL = "No Sign."
    CHANNEL_TECH_MESSAGE = "CTM"
    TV_ONLY = "TV Only"
    MEDIA_LIBRARY = "Media Lib."
    PRIVACY = "Privacy"
    OTHER = "Other"


class PrivacyContentKind(enum.Enum):
    """Second-round codebook for PRIVACY overlays."""

    CONSENT_NOTICE = "consent notice"
    PRIVACY_POLICY = "privacy policy"
    HYBRID = "hybrid"  # split screen: policy + cookie controls


@dataclass(frozen=True)
class ScreenState:
    """The visible overlay at one instant (one screenshot's content).

    Only the fields relevant to the active ``kind`` are populated; the
    rest keep their defaults.  Frozen so a screenshot can safely hold a
    reference without later mutation changing history.
    """

    kind: OverlayKind
    # PRIVACY overlays ------------------------------------------------------
    privacy_kind: PrivacyContentKind | None = None
    notice_type_id: int | None = None  # 1..12 branding registry
    notice_layer: int = 0  # 1..3 while a consent notice is up
    focused_button: str = ""  # label of the button holding focus
    visible_buttons: tuple[str, ...] = ()
    preticked_boxes: tuple[str, ...] = ()
    accept_highlighted: bool = False
    is_modal: bool = False
    covers_full_screen: bool = False
    policy_excerpt: str = ""  # start of a displayed privacy policy
    # MEDIA_LIBRARY / OTHER overlays ----------------------------------------
    has_privacy_pointer: bool = False
    pointer_label: str = ""
    pointer_prominent: bool = False  # False = hidden in a footer / tiny font
    # Free-form content shown on screen (ads, tickers, programme text).
    caption: str = ""

    def is_privacy_related(self) -> bool:
        """Does this screenshot show privacy information (Table V)?"""
        return self.kind is OverlayKind.PRIVACY

    def shows_privacy_pointer(self) -> bool:
        """Does it at least point at privacy settings (§VI-B 'Pointers')?"""
        return self.has_privacy_pointer


#: The steady state between overlays: plain linear TV.
TV_ONLY_SCREEN = ScreenState(kind=OverlayKind.TV_ONLY)

#: A channel currently not broadcasting anything receivable.
NO_SIGNAL_SCREEN = ScreenState(kind=OverlayKind.NO_SIGNAL)
