"""Tests for the DVB broadcast substrate."""

import random

import pytest

from repro.dvb.ait import AitApplication, ApplicationInformationTable, simple_ait
from repro.dvb.channel import BroadcastChannel, ChannelCategory, ChannelMeta
from repro.dvb.epg import GENRES, ProgrammeGuide, Show
from repro.dvb.receiver import GERMANY, Antenna, ReceiverLocation
from repro.dvb.satellite import (
    STANDARD_SATELLITES,
    Satellite,
    Transponder,
    standard_satellites,
)


def make_channel(name="Test TV", **meta_kwargs):
    return BroadcastChannel(
        meta=ChannelMeta(name=name, channel_id=name.lower(), **meta_kwargs)
    )


class TestSatellites:
    def test_standard_three(self):
        sats = standard_satellites()
        assert [s.name for s in sats] == [
            "Astra 1L",
            "Hot Bird 13E",
            "Eutelsat 16E",
        ]

    def test_transponder_channels(self):
        sat = Satellite("Test", 19.2)
        tp = sat.add_transponder(Transponder(11720, "H"))
        channel = make_channel()
        tp.add_channel(channel)
        assert channel.transponder is tp
        assert sat.channels() == [channel]

    def test_channels_across_transponders(self):
        sat = Satellite("Test", 19.2)
        for freq in (11720, 11800):
            tp = sat.add_transponder(Transponder(freq, "V"))
            tp.add_channel(make_channel(name=f"ch{freq}"))
        assert len(sat.channels()) == 2

    def test_catalog_includes_unreceivable(self):
        assert STANDARD_SATELLITES["Thor"] < 0
        assert STANDARD_SATELLITES["Hispasat"] < 0


class TestReceiver:
    def test_germany_sees_papers_three(self):
        antenna = Antenna(GERMANY)
        visible = antenna.visible_satellites(standard_satellites())
        assert len(visible) == 3

    def test_germany_cannot_see_western_satellites(self):
        antenna = Antenna(GERMANY)
        thor = Satellite("Thor", -0.8)
        hispasat = Satellite("Hispasat", -30.0)
        assert antenna.visible_satellites([thor, hispasat]) == []

    def test_scan_annotates_satellite_name(self):
        sat = Satellite("Astra 1L", 19.2)
        tp = sat.add_transponder(Transponder(11720, "H"))
        tp.add_channel(make_channel())
        received = Antenna(GERMANY).scan([sat])
        assert received[0].satellite_name == "Astra 1L"

    def test_custom_location(self):
        nordic = ReceiverLocation("Norway", arc_center_deg=-0.8, arc_half_width_deg=2)
        antenna = Antenna(nordic)
        assert antenna.visible_satellites([Satellite("Thor", -0.8)])
        assert not antenna.visible_satellites(standard_satellites())


class TestChannelMeta:
    def test_primary_category(self):
        meta = ChannelMeta(
            "Kids TV",
            "kids",
            categories=(ChannelCategory.CHILDREN, ChannelCategory.GENERAL),
        )
        assert meta.primary_category is ChannelCategory.CHILDREN

    def test_supports_hbbtv(self):
        channel = make_channel()
        assert not channel.supports_hbbtv
        channel.ait = simple_ait("http://app.test.de/index.html")
        assert channel.supports_hbbtv

    def test_empty_ait_is_not_hbbtv(self):
        channel = make_channel()
        channel.ait = ApplicationInformationTable()
        assert not channel.supports_hbbtv

    def test_on_air_all_day_default(self):
        channel = make_channel()
        assert channel.is_on_air(3.0)
        assert channel.is_on_air(23.9)

    def test_on_air_daytime_window(self):
        channel = make_channel()
        channel.broadcast_hours = (6, 20)
        assert channel.is_on_air(12.0)
        assert not channel.is_on_air(3.0)
        assert not channel.is_on_air(20.0)

    def test_on_air_wrapping_window(self):
        channel = make_channel()
        channel.broadcast_hours = (20, 4)
        assert channel.is_on_air(22.0)
        assert channel.is_on_air(2.0)
        assert not channel.is_on_air(12.0)


class TestAit:
    def test_autostart_application(self):
        ait = ApplicationInformationTable(
            applications=[
                AitApplication(2, 1, "present", "http://a.de/p", autostart=False),
                AitApplication(1, 1, "auto", "http://a.de/auto", autostart=True),
            ]
        )
        assert ait.autostart_application().name == "auto"

    def test_no_autostart(self):
        ait = ApplicationInformationTable(
            applications=[
                AitApplication(1, 1, "p", "http://a.de/p", autostart=False)
            ]
        )
        assert ait.autostart_application() is None

    def test_application_urls_include_preloads(self):
        ait = simple_ait(
            "http://a.de/app",
            preload_urls=("http://tracker.com/signal.gif",),
        )
        assert ait.application_urls() == [
            "http://a.de/app",
            "http://tracker.com/signal.gif",
        ]


class TestEpg:
    def test_current_show(self):
        guide = ProgrammeGuide(
            [Show("Morning", "news", 6.0, 4.0), Show("Night", "movie", 20.0, 4.0)]
        )
        assert guide.current_show(7.5).title == "Morning"
        assert guide.current_show(21.0).title == "Night"

    def test_show_airs_at_wraps_midnight(self):
        show = Show("Late", "movie", 23.0, 2.0)
        assert show.airs_at(23.5)
        assert show.airs_at(0.5)
        assert not show.airs_at(2.0)

    def test_generated_guide_covers_full_day(self):
        guide = ProgrammeGuide.generate(random.Random(7))
        for hour in range(24):
            assert guide.current_show(hour + 0.5) is not None

    def test_generated_guide_deterministic(self):
        titles_a = [s.title for s in ProgrammeGuide.generate(random.Random(3)).shows]
        titles_b = [s.title for s in ProgrammeGuide.generate(random.Random(3)).shows]
        assert titles_a == titles_b

    def test_preferred_genre_dominates(self):
        guide = ProgrammeGuide.generate(random.Random(1), preferred_genre="kids")
        kid_slots = sum(1 for s in guide.shows if s.genre == "kids")
        assert kid_slots >= len(guide.shows) // 2

    def test_empty_guide_rejected(self):
        with pytest.raises(ValueError):
            ProgrammeGuide([])

    def test_genres_nonempty(self):
        assert "kids" in GENRES
