"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


ARGS = ["--seed", "9", "--scale", "0.03"]


class TestCli:
    def test_study(self, capsys):
        assert main(ARGS + ["study"]) == 0
        out = capsys.readouterr().out
        assert "Meas. Run" in out
        assert "Yellow" in out

    def test_pixels(self, capsys):
        assert main(ARGS + ["pixels"]) == 0
        out = capsys.readouterr().out
        assert "tracking pixels" in out

    def test_graph(self, capsys):
        assert main(ARGS + ["graph"]) == 0
        out = capsys.readouterr().out
        assert "component" in out

    def test_policies(self, capsys):
        assert main(ARGS + ["policies"]) == 0
        out = capsys.readouterr().out
        assert "policy occurrences" in out

    def test_funnel(self, capsys):
        assert main(["--seed", "9", "--scale", "0.02", "funnel"]) == 0
        out = capsys.readouterr().out
        assert "received" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_metrics_prints_canonical_snapshot(self, capsys):
        assert main(ARGS + ["metrics"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["proxy.requests"]
        assert "proxy.response_bytes" in snapshot["histograms"]

    def test_trace_writes_canonical_jsonl(self, tmp_path, capsys):
        path = tmp_path / "study.jsonl"
        assert main(ARGS + ["--trace", str(path), "study"]) == 0
        out = capsys.readouterr().out
        assert f"trace event(s) to {path}" in out
        lines = path.read_text().strip().split("\n")
        assert len(lines) > 10
        first = json.loads(lines[0])
        assert first["kind"] == "begin" and first["name"] == "study"
        # Every record is canonical: sorted keys, tight separators.
        assert lines[0] == json.dumps(
            first, sort_keys=True, separators=(",", ":")
        )
        kinds = {json.loads(line)["name"] for line in lines}
        assert {"study", "run", "channel", "request"} <= kinds

    def test_trace_is_reproducible_byte_for_byte(self, tmp_path, capsys):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        assert main(ARGS + ["--trace", str(first), "study"]) == 0
        assert main(ARGS + ["--trace", str(second), "study"]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()


class TestCliFaults:
    SMALL = ["--seed", "9", "--scale", "0.02"]

    def test_health_without_faults_reports_clean(self, capsys):
        assert main(self.SMALL + ["health"]) == 0
        out = capsys.readouterr().out
        assert "run healthy" in out

    def test_health_with_faults_prints_table(self, capsys):
        assert main(self.SMALL + ["--faults", "light", "health"]) == 0
        out = capsys.readouterr().out
        assert "| run | faults | retries |" in out
        assert "totals:" in out

    def test_study_with_faults_appends_health_line(self, capsys):
        assert main(self.SMALL + ["--faults", "heavy", "study"]) == 0
        out = capsys.readouterr().out
        assert "Meas. Run" in out
        assert "run health:" in out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["--faults", "catastrophic", "study"])
