"""Third-party server population for the simulated ecosystem.

Each service in this package is an origin server
(:class:`repro.net.server.Server`) implementing one of the tracking
behaviours the paper observed: 1x1 pixel beacons (the tvping-like
heavyweight), audience analytics (xiti-like), fingerprinting script
hosts, cookie-syncing partners, and benign CDNs used as a control group.
"""

from repro.trackers.analytics import AnalyticsService
from repro.trackers.base import FilterListPresence, TrackerService, mint_identifier
from repro.trackers.cdn import CdnService
from repro.trackers.fingerprint import FingerprintService
from repro.trackers.pixel import PixelService
from repro.trackers.sync import SyncPair, SyncService

__all__ = [
    "TrackerService",
    "FilterListPresence",
    "mint_identifier",
    "PixelService",
    "AnalyticsService",
    "FingerprintService",
    "SyncService",
    "SyncPair",
    "CdnService",
]
