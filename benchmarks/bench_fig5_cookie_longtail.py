"""Figure 5 — long-tail distribution of cookie-using third parties.

Paper: positive skew; the most frequent third party (xiti-like) on 119
channels; 38 third parties on a single channel; only 25 third parties
used by more than ten channels — a scattered ecosystem, unlike the
Web's concentration on a few giants.
"""

from benchmarks.conftest import emit
from repro.analysis.cookies import cross_channel_report


def _ascii_series(series, width=60, height=8):
    if not series:
        return "(empty)"
    peak = max(series)
    lines = []
    step = max(1, len(series) // width)
    sampled = series[::step][:width]
    for level in range(height, 0, -1):
        threshold = peak * level / height
        lines.append(
            "".join("█" if value >= threshold else " " for value in sampled)
        )
    lines.append("─" * len(sampled))
    return "\n".join(lines)


def test_fig5_cookie_longtail(benchmark, cookie_records, flows):
    report = benchmark(cross_channel_report, cookie_records, flows)
    series = report.long_tail_series()
    widest, reach = report.most_widespread()

    body = _ascii_series(series)
    body += (
        f"\n\nthird parties setting cookies: {len(series)}"
        f"\nmost widespread: {widest} on {reach} channels (paper: xiti on 119)"
        f"\nsingle-channel parties: {report.single_channel_parties()} (paper: 38)"
        f"\nparties on >10 channels: {report.parties_on_more_than(10)} (paper: 25)"
        f"\nskewness: {report.skewness():.2f} (positive = long tail)"
    )
    emit("Figure 5 — Cookie-using third parties per channel", body)

    assert report.skewness() > 0
    assert report.single_channel_parties() >= 1
    assert series == sorted(series, reverse=True)
    # The head of the distribution reaches far beyond the median party.
    assert reach >= 2 * (series[len(series) // 2] or 1)
