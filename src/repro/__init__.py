"""repro — reproduction of "Privacy from 5 PM to 6 AM: Tracking and
Transparency Mechanisms in the HbbTV Ecosystem" (DSN 2025).

Top-level convenience API::

    import repro

    context = repro.run_default_study(scale=0.2)
    print(repro.table1(context.dataset))

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.dvb` — DVB-S broadcast substrate
- :mod:`repro.net` — HTTP/cookies/storage substrate
- :mod:`repro.trackers` — third-party service implementations
- :mod:`repro.hbbtv` — application specs, runtime, consent notices
- :mod:`repro.tv` — the webOS-like television
- :mod:`repro.proxy` — the interception proxy
- :mod:`repro.core` — the measurement framework (paper §IV)
- :mod:`repro.simulation` — world generation and study execution
- :mod:`repro.analysis` — tracking analyses (paper §V)
- :mod:`repro.consent` — consent-notice analyses (paper §VI)
- :mod:`repro.policy` — privacy-policy pipeline (paper §VII)
"""

from repro.core.report import format_overview_table, overview_table
from repro.simulation import build_world, default_study, run_study

__version__ = "1.0.0"

__all__ = [
    "build_world",
    "run_study",
    "default_study",
    "run_default_study",
    "table1",
    "__version__",
]


def run_default_study(seed: int = 7, scale: float | None = None):
    """Run (or fetch the memoized) study for ``(seed, scale)``."""
    return default_study(seed=seed, scale=scale)


def table1(dataset) -> str:
    """Render the Table I overview for a study dataset."""
    return format_overview_table(overview_table(dataset))
