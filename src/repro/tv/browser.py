"""The TV's embedded (Chromium-like) browser.

Owns the cookie jar and local storage the paper extracts over SSH after
each run, attaches cookies to outgoing requests, follows redirects (the
mechanism cookie syncing rides on), and exposes the small interface the
HbbTV runtime drives.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.clock import SimClock
from repro.net.cookies import CookieJar
from repro.net.http import Headers, HttpRequest, HttpResponse
from repro.net.storage import LocalStorage
from repro.net.url import URL
from repro.trackers.base import mint_identifier

MAX_REDIRECTS = 5

USER_AGENT = (
    "Mozilla/5.0 (Web0S; Linux/SmartTV) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Chrome/79.0 Safari/537.36 HbbTV/1.5.1 (+DRM; LGE; 43UK6300LLB;)"
)


class Transport(Protocol):
    """Where the browser sends requests (the interception proxy)."""

    def request(self, request: HttpRequest) -> HttpResponse: ...


class TvBrowser:
    """The browser runtime embedded in the TV."""

    def __init__(
        self,
        transport: Transport,
        clock: SimClock,
        device_info=None,
        seed: int = 0,
    ) -> None:
        self.transport = transport
        self.clock = clock
        self.device_info = device_info
        #: The UA every request carries: the device's own (fleet
        #: households vary it) or the stock LG string.
        self.user_agent = (
            getattr(device_info, "user_agent", "") or USER_AGENT
        )
        self.cookie_jar = CookieJar()
        self.local_storage = LocalStorage()
        self._rng = random.Random(f"browser:{seed}")
        self.requests_issued = 0
        self.failed_responses = 0

    # -- the interface the HbbTV runtime uses --------------------------------

    def browse(self, url: str, referer: str | None = None) -> HttpResponse:
        """Issue a request (with cookies) and follow redirects.

        Returns the final response.  Every hop is a separate request on
        the wire, so the interception proxy records the full chain —
        that is how cookie-sync redirects become observable flows.
        """
        current_url = url
        current_referer = referer
        response = None
        for _ in range(MAX_REDIRECTS + 1):
            response = self._issue(current_url, current_referer)
            if not response.is_redirect or response.location is None:
                return response
            next_url = str(URL.parse(current_url).join(response.location))
            current_referer = current_url
            current_url = next_url
        return response  # redirect loop cut off at MAX_REDIRECTS

    def device_params(self) -> dict[str, str]:
        """Query parameters carrying leakable device information."""
        if self.device_info is None:
            return {}
        return self.device_info.as_params()

    def mint_token(self, length: int = 16) -> str:
        return mint_identifier(self._rng, length)

    # -- internals -------------------------------------------------------------

    def _issue(self, url: str, referer: str | None) -> HttpResponse:
        parsed = URL.parse(url)
        headers = Headers([("User-Agent", self.user_agent)])
        if referer:
            headers.add("Referer", referer)
        cookie_header = self.cookie_jar.cookie_header_for(parsed, self.clock.now)
        if cookie_header:
            headers.add("Cookie", cookie_header)
        request = HttpRequest(
            "GET", url, headers=headers, timestamp=self.clock.now
        )
        response = self.transport.request(request)
        self.requests_issued += 1
        if response.status >= 500:
            # Synthesized gateway failures (dead endpoints, exhausted
            # retries) and upstream 5xx never carry trustworthy state;
            # a real browser drops the connection before Set-Cookie.
            self.failed_responses += 1
            return response
        self.cookie_jar.store_from_response(
            parsed, response.set_cookie_headers(), self.clock.now
        )
        return response

    # -- run hygiene -------------------------------------------------------------

    def wipe(self) -> None:
        """Clear cookies and storage (done between measurement runs)."""
        self.cookie_jar.clear()
        self.local_storage.clear()
