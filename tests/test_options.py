"""The unified :class:`~repro.core.options.ExecutionOptions` surface.

One coercion path now serves four callers — ``Study.run``,
``Study.fleet``/``run_fleet_study``, the CLI, and the service JSON
schema — so these tests pin the normalization rules, the strict JSON
codec (with a hypothesis round-trip law), and the canonical projection
the service dedup key hashes.
"""

import argparse

import pytest
from hypothesis import given, strategies as st

from repro.core.options import (
    UNSET,
    ExecutionOptions,
    OptionsError,
    resolve_options,
)
from repro.core.resilience import ResiliencePolicy
from repro.net.faults import FaultPlan
from repro.net.netsim import NetSimConfig


class TestNormalization:
    def test_defaults(self):
        opts = ExecutionOptions()
        assert opts.workers is None
        assert opts.shards is None
        assert opts.faults == "off"
        assert opts.resilience is None
        assert opts.netsim == "off"
        assert opts.cache is True
        assert opts.backend == "objects"
        assert opts.with_filtering is False

    def test_none_spellings_normalize_to_off(self):
        opts = ExecutionOptions(faults=None, netsim=None)
        assert opts.faults == "off" and opts.netsim == "off"
        opts = ExecutionOptions(faults="none", netsim="none")
        assert opts.faults == "off" and opts.netsim == "off"

    def test_equal_semantics_compare_equal(self):
        assert ExecutionOptions(faults="none") == ExecutionOptions(
            faults="off"
        )
        assert ExecutionOptions(resilience=True) == ExecutionOptions(
            resilience=ResiliencePolicy()
        )

    def test_resilience_booleans(self):
        assert ExecutionOptions(resilience=True).resilience == (
            ResiliencePolicy()
        )
        assert ExecutionOptions(resilience=False).resilience is None

    def test_inactive_netsim_config_normalizes_to_off(self):
        assert ExecutionOptions(netsim=NetSimConfig()).netsim == "off"

    def test_active_netsim_config_passes_through(self):
        config = NetSimConfig.preset("dsl")
        assert ExecutionOptions(netsim=config).netsim is config

    @pytest.mark.parametrize("value", [0, -1, True, 1.5, "four"])
    def test_bad_counts_rejected(self, value):
        with pytest.raises(OptionsError):
            ExecutionOptions(workers=value)
        with pytest.raises(OptionsError):
            ExecutionOptions(shards=value)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"faults": "earthquake"},
            {"faults": 3},
            {"netsim": "5g"},
            {"netsim": 3},
            {"resilience": "yes"},
            {"backend": "parquet"},
            {"with_filtering": 1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises((OptionsError, ValueError)):
            ExecutionOptions(**kwargs)


class TestJsonCodec:
    def test_unknown_keys_rejected(self):
        with pytest.raises(OptionsError, match="unknown option key"):
            ExecutionOptions.from_json({"worker": 2})

    def test_non_object_rejected(self):
        with pytest.raises(OptionsError, match="JSON object"):
            ExecutionOptions.from_json([1, 2])

    @pytest.mark.parametrize(
        "payload",
        [
            {"faults": {"hosts": []}},
            {"netsim": {"capacity": 5}},
            {"resilience": {"retries": 1}},
            {"cache": 7},
        ],
    )
    def test_structured_values_rejected_in_json(self, payload):
        with pytest.raises(OptionsError):
            ExecutionOptions.from_json(payload)

    def test_canonical_drops_workers_and_cache(self):
        canonical = ExecutionOptions(workers=8, cache=False).canonical()
        assert "workers" not in canonical
        assert "cache" not in canonical
        assert ExecutionOptions(workers=8).canonical_json() == (
            ExecutionOptions(workers=2, cache=False).canonical_json()
        )

    def test_canonical_keeps_output_shaping_knobs(self):
        base = ExecutionOptions().canonical_json()
        assert ExecutionOptions(shards=3).canonical_json() != base
        assert ExecutionOptions(faults="light").canonical_json() != base
        assert ExecutionOptions(backend="columnar").canonical_json() != base
        assert ExecutionOptions(with_filtering=True).canonical_json() != base

    def test_custom_fault_plan_not_serializable(self):
        opts = ExecutionOptions(faults=FaultPlan.light(seed=3))
        with pytest.raises(OptionsError, match="FaultPlan"):
            opts.to_json()

    def test_empty_fault_plan_serializes_as_off(self):
        assert ExecutionOptions(faults=FaultPlan()).to_json()["faults"] == (
            "off"
        )

    def test_preset_netsim_config_serializes_as_name(self):
        opts = ExecutionOptions(netsim=NetSimConfig.preset("fiber"))
        assert opts.to_json()["netsim"] == "fiber"

    def test_custom_resilience_not_serializable(self):
        opts = ExecutionOptions(
            resilience=ResiliencePolicy(breaker_failure_threshold=9)
        )
        with pytest.raises(OptionsError, match="ResiliencePolicy"):
            opts.to_json()

    def test_live_cache_not_serializable(self):
        from repro.cache import AnalysisCache

        opts = ExecutionOptions(cache=AnalysisCache())
        with pytest.raises(OptionsError, match="cache"):
            opts.to_json()


#: Every JSON-expressible options payload the schema accepts.
json_options = st.fixed_dictionaries(
    {},
    optional={
        "workers": st.none() | st.integers(min_value=1, max_value=64),
        "shards": st.none() | st.integers(min_value=1, max_value=64),
        "faults": st.sampled_from(
            ["off", "none", "light", "heavy", "chaos"]
        ),
        "resilience": st.none() | st.booleans(),
        "netsim": st.sampled_from(
            ["off", "none", "dsl", "fiber", "congested"]
        ),
        "cache": st.booleans() | st.just("/tmp/some-cache-dir"),
        "backend": st.sampled_from(["objects", "columnar"]),
        "with_filtering": st.booleans(),
    },
)


class TestRoundTrip:
    @given(payload=json_options)
    def test_from_json_to_json_round_trips(self, payload):
        options = ExecutionOptions.from_json(payload)
        assert ExecutionOptions.from_json(options.to_json()) == options

    @given(payload=json_options)
    def test_to_json_is_a_fixpoint(self, payload):
        encoded = ExecutionOptions.from_json(payload).to_json()
        assert ExecutionOptions.from_json(encoded).to_json() == encoded

    @given(payload=json_options)
    def test_canonical_is_deterministic(self, payload):
        options = ExecutionOptions.from_json(payload)
        assert options.canonical_json() == (
            ExecutionOptions.from_json(payload).canonical_json()
        )


class TestCliArgs:
    def _namespace(self, **overrides):
        defaults = dict(
            workers=None,
            shards=None,
            faults="off",
            netsim="off",
            backend="objects",
            cache_dir=None,
            no_cache=False,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_defaults(self):
        assert ExecutionOptions.from_cli_args(self._namespace()) == (
            ExecutionOptions()
        )

    def test_knobs_carry_over(self):
        namespace = self._namespace(
            workers=3, shards=6, faults="heavy", netsim="dsl",
            backend="columnar",
        )
        opts = ExecutionOptions.from_cli_args(namespace)
        assert opts.workers == 3 and opts.shards == 6
        assert opts.faults == "heavy" and opts.netsim == "dsl"
        assert opts.backend == "columnar"

    def test_no_cache_beats_cache_dir(self):
        namespace = self._namespace(no_cache=True, cache_dir="/tmp/x")
        assert ExecutionOptions.from_cli_args(namespace).cache is False

    def test_cache_dir_becomes_path(self):
        namespace = self._namespace(cache_dir="/tmp/x")
        assert ExecutionOptions.from_cli_args(namespace).cache == "/tmp/x"


class TestResolveOptions:
    def test_keywords_build_options(self):
        opts = resolve_options(faults="light", workers=2)
        assert opts.faults == "light" and opts.workers == 2

    def test_unset_keywords_ignored(self):
        assert resolve_options(faults=UNSET) == ExecutionOptions()

    def test_prebuilt_options_pass_through(self):
        opts = ExecutionOptions(shards=2)
        assert resolve_options(options=opts) is opts

    def test_dict_options_parse_as_json(self):
        assert resolve_options(options={"shards": 2}) == ExecutionOptions(
            shards=2
        )

    def test_options_plus_keywords_ambiguous(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_options(options=ExecutionOptions(), workers=2)

    def test_bad_options_type(self):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            resolve_options(options="heavy")


class TestFacadeIntegration:
    def test_study_run_rejects_options_plus_keywords(self):
        from repro.api import Study

        with pytest.raises(TypeError, match="not both"):
            Study(seed=1).run(options=ExecutionOptions(), workers=2)

    def test_fleet_tasks_carry_with_filtering(self):
        """Regression: ``Study.fleet`` silently dropped the funnel flag."""
        from repro.fleet.household import plan_fleet
        from repro.fleet.study import build_fleet_tasks
        from repro.simulation.world import build_world

        world = build_world(seed=3, scale=0.02)
        specs = plan_fleet(world, 3, 2)
        tasks = build_fleet_tasks(world, specs, with_filtering=True)
        assert tasks and all(task.with_filtering for task in tasks)
        tasks = build_fleet_tasks(world, specs)
        assert tasks and not any(task.with_filtering for task in tasks)

    def test_run_fleet_study_threads_with_filtering(self, monkeypatch):
        """The fleet facade forwards the flag into every shard task."""
        import repro.fleet.study as fleet_study

        captured = {}

        class _Stop(Exception):
            pass

        def spy(world, specs, **kwargs):
            captured.update(kwargs)
            raise _Stop()

        monkeypatch.setattr(fleet_study, "build_fleet_tasks", spy)
        with pytest.raises(_Stop):
            fleet_study.run_fleet_study(
                fleet_seed=3, n_households=2, scale=0.02,
                with_filtering=True,
            )
        assert captured["with_filtering"] is True
