"""The combined "tracking request" predicate.

The paper's channel-level analyses count a request as tracking when any
of its detectors fires: a filter-list hit (known tracker), the
tracking-pixel heuristic, or the fingerprinting heuristic.  This module
centralizes that union so every analysis counts identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.filterlists import FilterListSuite
from repro.analysis.fingerprinting import is_fingerprint_related
from repro.analysis.pixels import is_tracking_pixel
from repro.proxy.flow import Flow


@dataclass(frozen=True)
class TrackingVerdict:
    """Why a flow counts as tracking (all detectors evaluated)."""

    on_filter_list: bool
    is_pixel: bool
    is_fingerprinting: bool

    @property
    def is_tracking(self) -> bool:
        return self.on_filter_list or self.is_pixel or self.is_fingerprinting


class TrackingClassifier:
    """Classifies flows with all three detectors, lists parsed once."""

    def __init__(self, suite: FilterListSuite | None = None) -> None:
        self.suite = suite or FilterListSuite()

    def verdict(self, flow: Flow) -> TrackingVerdict:
        return TrackingVerdict(
            on_filter_list=self.suite.flags_url(flow.url, flow.host),
            is_pixel=is_tracking_pixel(flow),
            is_fingerprinting=is_fingerprint_related(flow),
        )

    def is_tracking(self, flow: Flow) -> bool:
        return self.verdict(flow).is_tracking

    def tracking_flows(self, flows: Iterable[Flow]) -> list[Flow]:
        return [f for f in flows if self.is_tracking(f)]

    def tracker_etld1s(self, flows: Iterable[Flow]) -> set[str]:
        """The distinct tracker parties across a flow set."""
        return {f.etld1 for f in flows if self.is_tracking(f)}


# -- pass registration -------------------------------------------------------------


@dataclass(frozen=True)
class TrackingSummary:
    """Pass result: the combined-predicate totals over a study."""

    tracking_requests: int
    tracker_parties: tuple[str, ...]

    @property
    def tracker_count(self) -> int:
        return len(self.tracker_parties)


from repro.analysis.filterlists import default_suite  # noqa: E402
from repro.analysis.passes import analysis_pass  # noqa: E402
from repro.analysis.vectorized import FlowScanner  # noqa: E402
from repro.core.columnar import ColumnView  # noqa: E402


@analysis_pass("tracking", version=1)
def run(dataset, ctx) -> TrackingSummary:
    """Pass entry point: tracking-request totals (union of detectors)."""
    view = ColumnView.of(dataset)
    if view is not None:
        scanner = FlowScanner(view, default_suite())
        strings = view.strings.values
        requests = 0
        columnar_parties: set[str] = set()
        for _, table in view.flow_runs():
            etld1_col = table.etld1
            for row in range(len(table)):
                if scanner.is_tracking(table, row):
                    requests += 1
                    columnar_parties.add(strings[etld1_col[row]])
        return TrackingSummary(
            tracking_requests=requests,
            tracker_parties=tuple(sorted(columnar_parties)),
        )
    classifier = TrackingClassifier(default_suite())
    requests = 0
    parties: set[str] = set()
    for flow in dataset.all_flows():
        if classifier.is_tracking(flow):
            requests += 1
            parties.add(flow.etld1)
    return TrackingSummary(
        tracking_requests=requests, tracker_parties=tuple(sorted(parties))
    )
