"""Server-sent event wire encoding (RFC-less but interoperable).

Pure functions over bytes — no I/O, no clocks — so the encoding is
unit-testable and the app layer owns all streaming concerns.  Events
carry a monotonically increasing ``id`` (the job's record sequence
number), which is what makes replay after a dropped connection exact:
a client that reconnects with a ``Last-Event-ID`` header resumes
*after* that sequence number — the server skips the already-seen
prefix, so each record is delivered exactly once.  Idle streams carry
:data:`HEARTBEAT` comment frames so proxies keep the connection open.
"""

from __future__ import annotations

import json

__all__ = ["HEARTBEAT", "format_event", "format_json_event"]

#: Comment-only frame; keeps idle connections alive through proxies.
HEARTBEAT = b": keep-alive\n\n"


def format_event(
    data: str, event: str | None = None, event_id: int | None = None
) -> bytes:
    """One SSE frame: optional ``id``/``event`` lines plus ``data``.

    Multi-line data is split across ``data:`` lines per the SSE spec,
    so embedded newlines survive the round trip.
    """
    lines: list[str] = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event:
        lines.append(f"event: {event}")
    for chunk in data.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def format_json_event(
    payload, event: str | None = None, event_id: int | None = None
) -> bytes:
    """An SSE frame whose data is canonical JSON (sorted, compact)."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return format_event(data, event=event, event_id=event_id)
