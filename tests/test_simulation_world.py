"""Tests for the world generator: determinism, structure, archetypes,
and calibration invariants."""

import pytest

from repro.dvb.channel import ChannelCategory
from repro.simulation.operators import (
    generate_independent_operators,
    standard_operators,
)
from repro.simulation.world import build_world

import random

SCALE = 0.12


@pytest.fixture(scope="module")
def world():
    return build_world(seed=21, scale=SCALE)


class TestDeterminism:
    def test_same_seed_same_world(self):
        world_a = build_world(seed=3, scale=0.05)
        world_b = build_world(seed=3, scale=0.05)
        ids_a = [c.channel_id for c in world_a.all_channels]
        ids_b = [c.channel_id for c in world_b.all_channels]
        assert ids_a == ids_b
        apps_a = {u: a.channel_id for u, a in world_a.app_registry.items()}
        apps_b = {u: a.channel_id for u, a in world_b.app_registry.items()}
        assert apps_a == apps_b

    def test_different_seeds_differ(self):
        # At tiny scales the named-operator roster dominates, so compare
        # the seeded tracking plans rather than channel names.
        world_a = build_world(seed=3, scale=0.05)
        world_b = build_world(seed=4, scale=0.05)

        def plan(world):
            return {
                app.channel_id: tuple(
                    (s.kind.value, s.domain(), s.period_s) for s in app.services
                )
                for app in world.app_registry.values()
            }

        assert plan(world_a) != plan(world_b)

    def test_same_seed_same_study(self):
        from repro.simulation.study import run_study

        counts = []
        for _ in range(2):
            context = run_study(build_world(seed=3, scale=0.03))
            counts.append(
                [len(r.flows) for r in context.dataset.runs.values()]
            )
        assert counts[0] == counts[1]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_world(seed=1, scale=0.0)


class TestWorldStructure:
    def test_channel_ids_unique(self, world):
        ids = [c.channel_id for c in world.all_channels]
        assert len(ids) == len(set(ids))

    def test_every_hbbtv_channel_has_app(self, world):
        for channel in world.hbbtv_channels:
            entry = channel.ait.autostart_application().entry_url
            truth = world.ground_truth[channel.channel_id]
            if truth.special == "dead-endpoint":
                assert entry not in world.app_registry
            else:
                assert entry in world.app_registry

    def test_dead_endpoint_channels_planted(self, world):
        dead = [
            g
            for g in world.ground_truth.values()
            if g.special == "dead-endpoint"
        ]
        assert len(dead) == 2
        for truth in dead:
            channel = world.channel_by_id(truth.channel_id)
            entry = channel.ait.autostart_application().entry_url
            from repro.net.url import URL

            assert not world.network.knows_host(URL.parse(entry).host)

    def test_dead_endpoint_channel_yields_504_traffic(self, world):
        from repro.simulation.study import make_context

        context = make_context(world)
        dead_id = next(
            g.channel_id
            for g in world.ground_truth.values()
            if g.special == "dead-endpoint"
        )
        channel = world.channel_by_id(dead_id)
        context.proxy.start()
        context.tv.power_on()
        context.tv.connect_wifi()
        context.proxy.notify_channel_switch(
            dead_id, channel.name, context.clock.now
        )
        context.tv.tune(channel)
        flows = [f for f in context.proxy.flows if f.channel_id == dead_id]
        assert flows
        assert all(f.status == 504 for f in flows)

    def test_every_app_entry_host_routable(self, world):
        from repro.net.url import URL

        for app in world.app_registry.values():
            assert world.network.knows_host(URL.parse(app.entry_url).host)

    def test_policy_urls_routable(self, world):
        from repro.net.url import URL

        for app in world.app_registry.values():
            if app.privacy_policy_url:
                host = URL.parse(app.privacy_policy_url).host
                assert world.network.knows_host(host)

    def test_funnel_filler_channels_present(self, world):
        radios = [c for c in world.all_channels if c.meta.is_radio]
        encrypted = [c for c in world.all_channels if c.meta.is_encrypted]
        iptv = [c for c in world.all_channels if c.is_iptv]
        assert radios and encrypted
        assert len(iptv) == 1

    def test_satellite_distribution(self, world):
        names = {s.name for s in world.satellites}
        assert names == {"Astra 1L", "Hot Bird 13E", "Eutelsat 16E"}
        total = sum(len(s.channels()) for s in world.satellites)
        assert total == len(world.all_channels)

    def test_categories_recorded_for_hbbtv_channels(self, world):
        for channel in world.hbbtv_channels:
            assert channel.channel_id in world.categories
            assert isinstance(
                world.categories[channel.channel_id], ChannelCategory
            )

    def test_ground_truth_covers_hbbtv_channels(self, world):
        for channel in world.hbbtv_channels:
            assert channel.channel_id in world.ground_truth


class TestArchetypes:
    def test_outlier_channel_exists(self, world):
        outliers = [
            g for g in world.ground_truth.values() if g.special == "outlier"
        ]
        assert len(outliers) == 1

    def test_children_trio_with_declared_window(self, world):
        trio = [
            g for g in world.ground_truth.values() if g.special == "superrtl"
        ]
        assert len(trio) == 3
        for truth in trio:
            assert truth.targets_children
            assert truth.policy_template.declared_window == (17, 6)

    def test_children_channels_marked(self, world):
        assert world.children_channel_ids
        for channel_id in world.children_channel_ids:
            assert world.ground_truth[channel_id].targets_children

    def test_misattribution_override_planted(self, world):
        assert world.manual_first_party_overrides
        for channel_id, etld1 in world.manual_first_party_overrides.items():
            truth = world.ground_truth[channel_id]
            assert etld1 in truth.first_party_domain

    def test_hybrid_blue_channels_exist(self, world):
        from repro.hbbtv.app import ScreenKind
        from repro.keys import Key

        hybrids = [
            app
            for app in world.app_registry.values()
            if app.screen_for(Key.BLUE).show_cookie_controls
        ]
        assert len(hybrids) == 2  # the RBB/MDR-like split screens

    def test_notice_styles_all_used_at_scale(self):
        world = build_world(seed=21, scale=1.0)
        used = {
            app.notice_style.type_id
            for app in world.app_registry.values()
            if app.notice_style is not None
        }
        assert used == set(range(1, 13))


class TestOperators:
    def test_standard_roster_scales(self):
        small = sum(op.channel_count for op in standard_operators(0.1))
        full = sum(op.channel_count for op in standard_operators(1.0))
        assert small < full

    def test_full_scale_channel_total(self):
        world = build_world(seed=21, scale=1.0)
        assert len(world.hbbtv_channels) == pytest.approx(396, abs=8)
        assert len(world.all_channels) == pytest.approx(3575, abs=60)

    def test_independent_names_unique(self):
        operators = generate_independent_operators(random.Random(1), 120)
        names = [op.name for op in operators]
        assert len(names) == len(set(names))

    def test_independent_policy_pool_shared(self):
        operators = generate_independent_operators(random.Random(1), 120)
        templates = [
            op.policy_template.template_id
            for op in operators
            if op.policy_template is not None
        ]
        # Many operators share boilerplate templates.
        assert len(set(templates)) < len(templates)

    def test_twelve_children_channels_at_full_scale(self):
        world = build_world(seed=21, scale=1.0)
        assert len(world.children_channel_ids) == 12
