"""Channel-level and category-level tracking analyses (§V-D3/4).

Produces the Figure 6 per-channel tracker distribution (with its single
extreme outlier), the Figure 7 per-category breakdown, and the
Kruskal–Wallis significance results the paper reports for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.stats import (
    DescriptiveStats,
    KruskalWallisResult,
    kruskal_wallis,
)
from repro.analysis.tracking import TrackingClassifier
from repro.dvb.channel import ChannelCategory
from repro.proxy.flow import Flow


@dataclass
class ChannelTrackingProfile:
    """Tracking aggregates for one channel across all runs."""

    channel_id: str
    tracking_requests: int = 0
    trackers: set[str] = field(default_factory=set)
    tracking_by_run: dict[str, int] = field(default_factory=dict)

    @property
    def tracker_count(self) -> int:
        return len(self.trackers)


@dataclass
class ChannelLevelReport:
    """§V-D3 output."""

    profiles: dict[str, ChannelTrackingProfile]
    requests_stats: DescriptiveStats
    trackers_stats: DescriptiveStats

    def outlier(self) -> ChannelTrackingProfile | None:
        """The channel with the most tracking requests."""
        if not self.profiles:
            return None
        return max(self.profiles.values(), key=lambda p: p.tracking_requests)

    def top_channels_by_trackers(self, n: int = 10) -> list[ChannelTrackingProfile]:
        return sorted(
            self.profiles.values(), key=lambda p: -p.tracker_count
        )[:n]

    def tracker_count_series(self) -> list[int]:
        """Tracker counts sorted descending — the Figure 6 curve."""
        return sorted(
            (p.tracker_count for p in self.profiles.values()), reverse=True
        )

    def top10_request_share(self) -> float:
        """Share of tracking requests from the 10 most-tracked channels."""
        total = sum(p.tracking_requests for p in self.profiles.values())
        if total == 0:
            return 0.0
        top = sorted(
            (p.tracking_requests for p in self.profiles.values()), reverse=True
        )[:10]
        return sum(top) / total


def channel_level_report(
    flows: Iterable[Flow],
    classifier: TrackingClassifier | None = None,
) -> ChannelLevelReport:
    """Per-channel tracking profile over attributed flows (all runs).

    Only channels with at least one tracking request are included,
    matching the paper's §V-D3 restriction.
    """
    classifier = classifier or TrackingClassifier()
    profiles: dict[str, ChannelTrackingProfile] = {}
    for flow in flows:
        if not flow.channel_id:
            continue
        if not classifier.is_tracking(flow):
            continue
        profile = profiles.setdefault(
            flow.channel_id, ChannelTrackingProfile(flow.channel_id)
        )
        profile.tracking_requests += 1
        profile.trackers.add(flow.etld1)
        profile.tracking_by_run[flow.run_name] = (
            profile.tracking_by_run.get(flow.run_name, 0) + 1
        )
    return ChannelLevelReport(
        profiles=profiles,
        requests_stats=DescriptiveStats.of(
            [p.tracking_requests for p in profiles.values()]
        ),
        trackers_stats=DescriptiveStats.of(
            [p.tracker_count for p in profiles.values()]
        ),
    )


def channel_effect_test(report: ChannelLevelReport) -> KruskalWallisResult:
    """Does the channel significantly affect tracker volume?

    Groups per-run tracking request counts by channel — the paper found
    a significant effect with a *large* effect size.
    """
    groups = [
        list(p.tracking_by_run.values())
        for p in report.profiles.values()
        if p.tracking_by_run
    ]
    return kruskal_wallis([g for g in groups if g])


@dataclass
class CategoryRow:
    """One Figure 7 data point."""

    category: str
    channel_count: int
    tracking_requests: int
    tracker_counts: list[int] = field(default_factory=list)

    @property
    def mean_trackers(self) -> float:
        if not self.tracker_counts:
            return 0.0
        return sum(self.tracker_counts) / len(self.tracker_counts)


@dataclass
class CategoryReport:
    """§V-D4 output."""

    rows: dict[str, CategoryRow]

    def ordered_by_requests(self) -> list[CategoryRow]:
        return sorted(self.rows.values(), key=lambda r: -r.tracking_requests)

    def top5_request_share(self) -> float:
        ordered = self.ordered_by_requests()
        total = sum(r.tracking_requests for r in ordered)
        if total == 0:
            return 0.0
        return sum(r.tracking_requests for r in ordered[:5]) / total

    def top5_channel_count(self) -> int:
        return sum(r.channel_count for r in self.ordered_by_requests()[:5])


def category_report(
    report: ChannelLevelReport,
    categories: dict[str, ChannelCategory],
) -> CategoryReport:
    """Group channel profiles by their *first* assigned category."""
    rows: dict[str, CategoryRow] = {}
    for profile in report.profiles.values():
        category = categories.get(profile.channel_id)
        label = category.value if category is not None else "Other/Unknown"
        row = rows.setdefault(label, CategoryRow(label, 0, 0))
        row.channel_count += 1
        row.tracking_requests += profile.tracking_requests
        row.tracker_counts.append(profile.tracker_count)
    return CategoryReport(rows=rows)


def category_effect_test(report: CategoryReport) -> KruskalWallisResult:
    """Does the category affect tracker counts? (paper: medium effect)"""
    groups = [row.tracker_counts for row in report.rows.values()]
    return kruskal_wallis([g for g in groups if g])


# -- pass registration -------------------------------------------------------------


@dataclass(frozen=True)
class ChannelsResult:
    """Pass result: per-channel profiles plus the category breakdown."""

    profiles: ChannelLevelReport
    by_category: CategoryReport
    category_effect: KruskalWallisResult


def _channels_params(ctx) -> dict:
    return {"categories": dict(ctx.categories)}


from repro.analysis.filterlists import default_suite  # noqa: E402
from repro.analysis.passes import analysis_pass  # noqa: E402
from repro.analysis.vectorized import FlowScanner  # noqa: E402
from repro.core.columnar import ColumnView  # noqa: E402


def _columnar_channel_report(view: ColumnView) -> ChannelLevelReport:
    """§V-D3 per-channel profiles as a column scan.

    Profile insertion order is first-tracking-flow order and
    ``tracking_by_run`` keys follow flow order, exactly like the
    object path — channel/run ids map 1:1 to their strings, so the
    id-keyed scan preserves both.
    """
    scanner = FlowScanner(view, default_suite())
    strings = view.strings.values
    empty = view.empty_id
    profiles: dict[str, ChannelTrackingProfile] = {}
    for _, table in view.flow_runs():
        channel_col = table.channel_id
        etld1_col = table.etld1
        run_col = table.run_name
        for row in range(len(table)):
            channel_id = channel_col[row]
            if channel_id == empty:
                continue
            if not scanner.is_tracking(table, row):
                continue
            channel = strings[channel_id]
            profile = profiles.setdefault(
                channel, ChannelTrackingProfile(channel)
            )
            profile.tracking_requests += 1
            profile.trackers.add(strings[etld1_col[row]])
            run_name = strings[run_col[row]]
            profile.tracking_by_run[run_name] = (
                profile.tracking_by_run.get(run_name, 0) + 1
            )
    return ChannelLevelReport(
        profiles=profiles,
        requests_stats=DescriptiveStats.of(
            [p.tracking_requests for p in profiles.values()]
        ),
        trackers_stats=DescriptiveStats.of(
            [p.tracker_count for p in profiles.values()]
        ),
    )


@analysis_pass("channels", version=1, params=_channels_params)
def run(dataset, ctx) -> ChannelsResult:
    """Pass entry point: §V-D3/4 channel and category tracking."""
    view = ColumnView.of(dataset)
    if view is not None:
        profiles = _columnar_channel_report(view)
    else:
        profiles = channel_level_report(
            dataset.all_flows(), TrackingClassifier(default_suite())
        )
    by_category = category_report(profiles, dict(ctx.categories))
    return ChannelsResult(
        profiles=profiles,
        by_category=by_category,
        category_effect=category_effect_test(by_category),
    )
