"""The annotation pipeline over all screenshots (Tables IV and V).

Round 1 classifies every screenshot's overlay type; round 2 inspects
the PRIVACY overlays (consent notice vs policy vs hybrid) and the other
overlays for privacy pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.consent.codebook import AnnotationLabel, ScreenshotAnnotator
from repro.hbbtv.overlay import OverlayKind, PrivacyContentKind
from repro.tv.screenshot import Screenshot


@dataclass(frozen=True)
class Annotation:
    """One annotated screenshot."""

    channel_id: str
    run_name: str
    timestamp: float
    label: AnnotationLabel

    @property
    def is_privacy(self) -> bool:
        return self.label.overlay is OverlayKind.PRIVACY


def annotate_screenshots(
    screenshots: Iterable[Screenshot],
    annotator: ScreenshotAnnotator | None = None,
) -> list[Annotation]:
    """Run the full two-round annotation."""
    annotator = annotator or ScreenshotAnnotator()
    return [
        Annotation(
            channel_id=shot.channel_id,
            run_name=shot.run_name,
            timestamp=shot.timestamp,
            label=annotator.annotate(shot),
        )
        for shot in screenshots
    ]


@dataclass
class OverlayDistribution:
    """One Table IV row: overlay-type counts for one run."""

    run_name: str
    counts: dict[OverlayKind, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count(self, kind: OverlayKind) -> int:
        return self.counts.get(kind, 0)


def overlay_distribution(
    annotations: Iterable[Annotation],
) -> dict[str, OverlayDistribution]:
    """Build Table IV: overlay types per measurement run."""
    rows: dict[str, OverlayDistribution] = {}
    for annotation in annotations:
        row = rows.setdefault(
            annotation.run_name, OverlayDistribution(annotation.run_name)
        )
        kind = annotation.label.overlay
        row.counts[kind] = row.counts.get(kind, 0) + 1
    return rows


@dataclass(frozen=True)
class PrivacyPrevalence:
    """One Table V row."""

    run_name: str
    total_screenshots: int
    privacy_screenshots: int
    total_channels: int
    privacy_channels: int

    @property
    def screenshot_share(self) -> float:
        if self.total_screenshots == 0:
            return 0.0
        return self.privacy_screenshots / self.total_screenshots

    @property
    def channel_share(self) -> float:
        if self.total_channels == 0:
            return 0.0
        return self.privacy_channels / self.total_channels


def privacy_prevalence(
    annotations: Iterable[Annotation],
) -> dict[str, PrivacyPrevalence]:
    """Build Table V: prevalence of privacy-related information."""
    shots: dict[str, int] = {}
    priv_shots: dict[str, int] = {}
    channels: dict[str, set[str]] = {}
    priv_channels: dict[str, set[str]] = {}
    for annotation in annotations:
        run = annotation.run_name
        shots[run] = shots.get(run, 0) + 1
        channels.setdefault(run, set()).add(annotation.channel_id)
        if annotation.is_privacy:
            priv_shots[run] = priv_shots.get(run, 0) + 1
            priv_channels.setdefault(run, set()).add(annotation.channel_id)
    return {
        run: PrivacyPrevalence(
            run_name=run,
            total_screenshots=shots[run],
            privacy_screenshots=priv_shots.get(run, 0),
            total_channels=len(channels[run]),
            privacy_channels=len(priv_channels.get(run, set())),
        )
        for run in shots
    }


def channels_with_privacy_info(annotations: Iterable[Annotation]) -> set[str]:
    """Channels showing a notice or policy on ≥1 screenshot, any run
    (the paper's 121 channels / 31.03%)."""
    return {a.channel_id for a in annotations if a.is_privacy}


def pointer_prevalence(annotations: Iterable[Annotation]) -> set[str]:
    """Channels displaying a privacy pointer at least once (290 / 74%)."""
    return {
        a.channel_id for a in annotations if a.label.has_privacy_pointer
    }


@dataclass
class NoticePersistence:
    """§VI-B "Persistence": how long privacy overlays stay on screen."""

    #: channel → share of its screenshots showing a consent notice.
    notice_share_by_channel: dict[str, float] = field(default_factory=dict)
    #: channel → share of its screenshots showing a policy (or hybrid).
    policy_share_by_channel: dict[str, float] = field(default_factory=dict)

    def mean_notice_share(self) -> float:
        values = list(self.notice_share_by_channel.values())
        return sum(values) / len(values) if values else 0.0

    def mean_policy_share(self) -> float:
        values = list(self.policy_share_by_channel.values())
        return sum(values) / len(values) if values else 0.0


def notice_persistence(annotations: Iterable[Annotation]) -> NoticePersistence:
    """Notices vanish (timeouts/dismissal); policies persist on screen."""
    total: dict[str, int] = {}
    notice: dict[str, int] = {}
    policy: dict[str, int] = {}
    for annotation in annotations:
        channel = annotation.channel_id
        total[channel] = total.get(channel, 0) + 1
        if annotation.label.privacy_kind is PrivacyContentKind.CONSENT_NOTICE:
            notice[channel] = notice.get(channel, 0) + 1
        elif annotation.label.privacy_kind in (
            PrivacyContentKind.PRIVACY_POLICY,
            PrivacyContentKind.HYBRID,
        ):
            policy[channel] = policy.get(channel, 0) + 1
    result = NoticePersistence()
    for channel, count in notice.items():
        result.notice_share_by_channel[channel] = count / total[channel]
    for channel, count in policy.items():
        result.policy_share_by_channel[channel] = count / total[channel]
    return result


# -- pass registration -------------------------------------------------------------


@dataclass(frozen=True)
class ConsentResult:
    """Pass result: the §VI annotation aggregates (Tables IV, V)."""

    annotation_count: int
    distribution: dict[str, OverlayDistribution]
    prevalence: dict[str, PrivacyPrevalence]
    privacy_channels: tuple[str, ...]
    pointer_channels: tuple[str, ...]
    measured_channels: int


from repro.analysis.passes import analysis_pass  # noqa: E402


@analysis_pass("consent", version=1)
def run(dataset, ctx) -> ConsentResult:
    """Pass entry point: annotate every screenshot and aggregate."""
    annotations = annotate_screenshots(dataset.all_screenshots())
    return ConsentResult(
        annotation_count=len(annotations),
        distribution=overlay_distribution(annotations),
        prevalence=privacy_prevalence(annotations),
        privacy_channels=tuple(
            sorted(channels_with_privacy_info(annotations))
        ),
        pointer_channels=tuple(sorted(pointer_prevalence(annotations))),
        measured_channels=len(dataset.channels_measured()),
    )
