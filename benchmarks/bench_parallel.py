"""Sharded parallel execution — sequential vs 2/4/8-way workers.

Runs the same sharded study (8 shards) at several scales with a
growing worker ladder and reports wall-clock speedups against the
one-worker (sequential) execution of the identical shard set, plus the
classic unsharded timeline for reference.  The study digest is
asserted equal across every worker count — the bench doubles as a
full-scale differential equivalence check.

Speedups are whatever the hardware allows: on a single-CPU container
the worker ladder only adds process-spawn overhead and the honest
numbers show it; with ≥4 cores the 4-way rung is where the ≥2× win
lives, since each worker executes two of the eight shards.
"""

import os
import time

from benchmarks.conftest import SEED, emit
from repro.core.dataset import study_digest
from repro.simulation.study import configured_scale, run_study
from repro.simulation.world import build_world

WORKER_LADDER = (1, 2, 4, 8)
N_SHARDS = 8

#: The ladder at the configured scale, plus a small scale for contrast
#: ("several scales" without several minutes on small boxes).
BENCH_SCALES = tuple(
    dict.fromkeys((min(configured_scale(), 0.05), configured_scale()))
)


def _run_ladder(scale):
    timings = {}
    digests = {}
    for workers in WORKER_LADDER:
        world = build_world(seed=SEED, scale=scale)
        started = time.perf_counter()
        context = run_study(world, workers=workers, shards=N_SHARDS)
        timings[workers] = time.perf_counter() - started
        digests[workers] = study_digest(context.dataset)
    return timings, digests


def test_parallel_speedup(benchmark):
    legacy_seconds = {}
    for scale in BENCH_SCALES:
        started = time.perf_counter()
        run_study(build_world(seed=SEED, scale=scale))
        legacy_seconds[scale] = time.perf_counter() - started

    results = {}

    def ladder_all_scales():
        for scale in BENCH_SCALES:
            results[scale] = _run_ladder(scale)
        return results

    benchmark.pedantic(ladder_all_scales, rounds=1, iterations=1)

    lines = [
        f"world seed {SEED}, {N_SHARDS} shards, "
        f"{os.cpu_count()} CPU(s) available",
        "",
    ]
    for scale in BENCH_SCALES:
        timings, digests = results[scale]
        base = timings[1]
        lines.append(f"scale {scale}:")
        lines.append(
            f"  unsharded sequential : {legacy_seconds[scale]:7.2f}s "
            "(reference timeline)"
        )
        for workers in WORKER_LADDER:
            speedup = base / timings[workers] if timings[workers] else 0.0
            lines.append(
                f"  sharded, {workers} worker(s) : {timings[workers]:7.2f}s "
                f"({speedup:4.2f}x vs 1 worker)"
            )
        lines.append(f"  digest (all worker counts): {digests[1][:16]}…")
        lines.append("")
    emit("Sharded parallel study execution", "\n".join(lines))

    for scale in BENCH_SCALES:
        timings, digests = results[scale]
        # Bit-for-bit identical output across the whole worker ladder.
        assert len(set(digests.values())) == 1
        assert all(seconds > 0 for seconds in timings.values())
