"""The titular analysis — tracking by hour of day.

The paper's name comes from a children's-channel policy that confines
personalization to "5 PM to 6 AM".  This bench renders the per-hour
tracking activity of the channels that declare such a window: the
sparklines show around-the-clock beaconing, and the compliance check
quantifies the share of tracking outside the declared hours.
"""

from benchmarks.conftest import emit
from repro.analysis.timewindow import (
    hourly_tracking_histograms,
    window_compliance,
)


def test_timewindow(benchmark, study, flows):
    histograms = benchmark(hourly_tracking_histograms, flows)

    windows = {
        truth.channel_id: truth.policy_template.declared_window
        for truth in study.world.ground_truth.values()
        if truth.policy_template is not None
        and truth.policy_template.declared_window is not None
    }
    results = window_compliance(histograms, windows)

    lines = ["hour of day:        0     6     12    18    23", ""]
    for result in results:
        histogram = histograms[result.channel_id]
        start, end = result.window
        lines.append(
            f"{result.channel_id:<22} {histogram.sparkline()}"
        )
        lines.append(
            f"{'':<22} declared {start:02d}:00-{end:02d}:00 → "
            f"{result.outside:,} of {result.total:,} tracking requests "
            f"({result.outside_share:.0%}) fall OUTSIDE the window"
        )
    lines.append(
        "\n(paper: 21 tracking requests with user IDs and the watched show "
        "observed outside the declared period on 2 of the 3 channels)"
    )
    emit('The titular check — "Privacy from 5 PM to 6 AM"', "\n".join(lines))

    assert results
    assert any(not r.compliant for r in results)
    # Tracking fires whenever the channel is watched — each of the five
    # runs visits at a different time of day, and every visit tracks.
    assert any(
        histograms[r.channel_id].active_hours() >= 3 for r in results
    )
