"""The smart TV itself: tuner, power state, Wi-Fi, and the app slot.

Models the study's rooted LG 43UK6300LLB closely enough for every
observable the measurement framework relies on: channel metadata,
autostart application launch (including signal-encoded third-party
preloads), key forwarding, and screenshots of the current overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import SimClock
from repro.dvb.channel import BroadcastChannel
from repro.hbbtv.app import HbbTVApplication
from repro.hbbtv.overlay import (
    NO_SIGNAL_SCREEN,
    OverlayKind,
    ScreenState,
    TV_ONLY_SCREEN,
)
from repro.hbbtv.runtime import AppRuntime
from repro.keys import Key
from repro.tv.browser import TvBrowser
from repro.tv.screenshot import Screenshot


@dataclass(frozen=True)
class DeviceInfo:
    """Technical identity of the TV — the §V-B "technical data"."""

    manufacturer: str
    model: str
    os_version: str
    language: str
    ip_address: str = "192.168.178.42"
    mac_address: str = "cc:2d:8c:aa:bb:42"
    #: Per-device User-Agent override for fleet households; the empty
    #: string means the stock :data:`repro.tv.browser.USER_AGENT`.
    user_agent: str = ""

    def as_params(self) -> dict[str, str]:
        """The query parameters leaking apps attach to tracker URLs."""
        return {
            "mf": self.manufacturer,
            "md": self.model,
            "os": self.os_version,
            "lang": self.language,
        }


#: The paper's measurement device.
LG_43UK6300LLB = DeviceInfo(
    manufacturer="LGE",
    model="43UK6300LLB",
    os_version="WEBOS4.0 05.40.26",
    language="German",
)


class SmartTV:
    """A webOS-like HbbTV 2.0 television."""

    def __init__(
        self,
        transport,
        clock: SimClock,
        device_info: DeviceInfo = LG_43UK6300LLB,
        app_registry: dict[str, HbbTVApplication] | None = None,
        seed: int = 0,
    ) -> None:
        self.clock = clock
        self.device_info = device_info
        self.browser = TvBrowser(transport, clock, device_info, seed=seed)
        #: entry URL → application spec (what the fetched HTML "is").
        self.app_registry = app_registry or {}
        self.powered = False
        self.wifi_connected = False
        self.channel_list: list[BroadcastChannel] = []
        self.current_channel: BroadcastChannel | None = None
        self.runtime: AppRuntime | None = None

    # -- power / connectivity -------------------------------------------------

    def power_on(self) -> None:
        self.powered = True

    def power_off(self) -> None:
        if self.runtime is not None:
            self.runtime.stop()
            self.runtime = None
        self.current_channel = None
        self.powered = False

    def connect_wifi(self) -> None:
        self.wifi_connected = True

    def disconnect_wifi(self) -> None:
        self.wifi_connected = False

    def install_channel_list(self, channels: list[BroadcastChannel]) -> None:
        """Result of a channel scan."""
        self.channel_list = list(channels)

    # -- tuning -----------------------------------------------------------------

    def tune(self, channel: BroadcastChannel) -> None:
        """Switch to a channel; exits any running HbbTV application.

        If the channel signals an autostart application and the TV is
        online, the application is launched.  Signal-encoded preload
        URLs are fetched *before* the entry document — this reproduces
        the paper's observation that some channels put third-party
        endpoints directly into the broadcast signal, making a tracker
        the first request observed on the channel.
        """
        self._require_power()
        if self.runtime is not None:
            self.runtime.stop()
            self.runtime = None
        self.current_channel = channel
        if not self.wifi_connected or not channel.supports_hbbtv:
            return
        if channel.meta.is_encrypted or channel.meta.is_invisible:
            return
        assert channel.ait is not None
        app_entry = channel.ait.autostart_application()
        if app_entry is None:
            return
        for preload in app_entry.preload_urls:
            self.browser.browse(preload)
        spec = self.app_registry.get(app_entry.entry_url)
        if spec is None:
            # Channel signals an application we have no spec for: the
            # entry document is still fetched (traffic exists), but
            # nothing else happens.
            self.browser.browse(app_entry.entry_url)
            return
        self.runtime = AppRuntime(spec, self.browser, self.clock, channel)
        self.runtime.start()

    # -- interaction ---------------------------------------------------------------

    def press(self, key: Key) -> None:
        self._require_power()
        if self.runtime is not None:
            self.runtime.press(key)

    def wait(self, seconds: float) -> None:
        """Let simulated time pass (beacons keep firing)."""
        self._require_power()
        if self.runtime is not None:
            self.runtime.wait(seconds)
        else:
            self.clock.advance(seconds)

    # -- observation ------------------------------------------------------------------

    def screen_state(self) -> ScreenState:
        if not self.powered or self.current_channel is None:
            return NO_SIGNAL_SCREEN
        channel = self.current_channel
        if channel.meta.is_invisible or not channel.is_on_air(
            self.clock.hour_of_day()
        ):
            return NO_SIGNAL_SCREEN
        if channel.meta.is_encrypted:
            return ScreenState(
                kind=OverlayKind.CHANNEL_TECH_MESSAGE, caption="No CI module"
            )
        if self.runtime is not None:
            return self.runtime.screen_state()
        return TV_ONLY_SCREEN

    def screenshot(self) -> Screenshot:
        channel = self.current_channel
        return Screenshot(
            channel_id=channel.channel_id if channel else "",
            channel_name=channel.name if channel else "",
            timestamp=self.clock.now,
            screen=self.screen_state(),
        )

    # -- hygiene -------------------------------------------------------------------------

    def wipe(self) -> None:
        """Wipe cookies and storage between runs."""
        self.browser.wipe()

    def _require_power(self) -> None:
        if not self.powered:
            raise RuntimeError("the TV is powered off")
