"""The five measurement runs and their fixed interaction sequences.

Each color-button run presses its button once, waits, and then replays a
*fixed* sequence of ten presses drawn from the cursor keys and ENTER
(with ENTER guaranteed at least once, to trigger loading of new HbbTV
content).  The sequence is generated once per run and reused on every
channel, exactly as in §IV-C.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.keys import INTERACTION_KEYS, Key


@dataclass(frozen=True)
class RunSpec:
    """One measurement run."""

    name: str
    color_button: Key | None
    interaction_sequence: tuple[Key, ...] = ()
    #: Simulated calendar date label for reports (Table I's Date column).
    date_label: str = ""

    @property
    def is_interactive(self) -> bool:
        return self.color_button is not None

    def trace_attrs(self) -> dict:
        """Span attributes identifying this run on the trace stream.

        Centralized here so the sequential framework and the sharded
        executor label their ``run`` spans identically — the golden
        trace diff would otherwise drift on attribute spelling.
        """
        return {
            "run": self.name,
            "interactive": self.is_interactive,
            "date": self.date_label,
        }


def generate_interaction_sequence(
    rng: random.Random, length: int = 10
) -> tuple[Key, ...]:
    """A fixed sequence of cursor/ENTER presses with ENTER at least once."""
    if length < 1:
        raise ValueError("interaction sequences need at least one press")
    sequence = [rng.choice(INTERACTION_KEYS) for _ in range(length)]
    if Key.ENTER not in sequence:
        sequence[rng.randrange(length)] = Key.ENTER
    return tuple(sequence)


#: Paper run names in measurement order with their real dates.
RUN_ORDER = (
    ("General", None, "2023-08-21"),
    ("Red", Key.RED, "2023-09-14"),
    ("Green", Key.GREEN, "2023-09-22"),
    ("Blue", Key.BLUE, "2023-09-27"),
    ("Yellow", Key.YELLOW, "2023-10-12"),
)


def ensure_runs(
    runs: list[RunSpec] | None, seed: int = 0, presses: int = 10
) -> list[RunSpec]:
    """Default ``runs`` to the paper's five standard runs.

    Centralizes the fallback so the sequential framework and the
    sharded executor resolve an omitted run list identically — shards
    must execute the exact runs the merged study claims to contain.
    """
    if runs:
        return list(runs)
    return standard_runs(seed, presses)


def standard_runs(seed: int = 0, presses: int = 10) -> list[RunSpec]:
    """Build the paper's five runs with seeded interaction sequences."""
    runs = []
    for name, button, date_label in RUN_ORDER:
        if button is None:
            runs.append(RunSpec(name, None, (), date_label))
            continue
        rng = random.Random(f"interaction:{seed}:{name}")
        runs.append(
            RunSpec(
                name,
                button,
                generate_interaction_sequence(rng, presses),
                date_label,
            )
        )
    return runs
