"""The MAPP-style data-practices taxonomy.

A bilingual (EN/DE) taxonomy of data practices extending OPP-115 with
GDPR concepts: top-level categories for first-party collection/use and
third-party collection/sharing, each with attributes carrying
fine-grained values, plus the GDPR data-subject rights as first-class
entries.  The rule-based annotator in :mod:`repro.policy.practices`
emits labels from this taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TaxonomyValue:
    """A fine-grained value, with detection phrases per language."""

    name: str
    phrases_de: tuple[str, ...] = ()
    phrases_en: tuple[str, ...] = ()


@dataclass(frozen=True)
class TaxonomyAttribute:
    name: str
    values: tuple[TaxonomyValue, ...] = ()


@dataclass(frozen=True)
class TaxonomyCategory:
    name: str
    attributes: tuple[TaxonomyAttribute, ...] = ()


def _value(name: str, de: tuple[str, ...], en: tuple[str, ...]) -> TaxonomyValue:
    return TaxonomyValue(name, de, en)


FIRST_PARTY_COLLECTION = TaxonomyCategory(
    "FirstPartyCollectionUse",
    (
        TaxonomyAttribute(
            "CollectedInformationType",
            (
                _value(
                    "IPAddress",
                    ("ip-adresse", "ip adresse"),
                    ("ip address",),
                ),
                _value(
                    "DeviceInformation",
                    ("geräteinformation", "empfangsgerät", "endgerät"),
                    ("device information", "receiver"),
                ),
                _value(
                    "UsageData",
                    ("nutzungsverhalten", "reichweitenmessung", "sehverhalten"),
                    ("usage behaviour", "audience measurement"),
                ),
                _value(
                    "Timestamp",
                    ("datum und uhrzeit",),
                    ("date and time",),
                ),
            ),
        ),
        TaxonomyAttribute(
            "LegalBasis",
            (
                _value(
                    "Consent",
                    ("einwilligung", "art. 6 abs. 1 lit. a"),
                    ("consent", "art. 6(1)(a)"),
                ),
                _value(
                    "LegitimateInterest",
                    ("berechtigte interessen", "berechtigten interessen"),
                    ("legitimate interest",),
                ),
                _value(
                    "VitalInterest",
                    ("lebenswichtiger interessen", "lebenswichtige interessen"),
                    ("vital interest",),
                ),
                _value(
                    "LegalObligation",
                    ("rechtlicher verpflichtungen", "rechtliche verpflichtung"),
                    ("legal obligation",),
                ),
            ),
        ),
        TaxonomyAttribute(
            "Anonymization",
            (
                _value(
                    "FullAnonymization",
                    ("vollständig anonymisiert",),
                    ("fully anonymized",),
                ),
                _value(
                    "Truncation",
                    ("gekürzt", "pseudonymisierung"),
                    ("truncated", "pseudonymization"),
                ),
            ),
        ),
    ),
)

THIRD_PARTY_SHARING = TaxonomyCategory(
    "ThirdPartySharingCollection",
    (
        TaxonomyAttribute(
            "Recipient",
            (
                _value(
                    "ServiceProvider",
                    ("dienstleister", "in unserem auftrag"),
                    ("service provider", "on our behalf"),
                ),
                _value(
                    "Advertiser",
                    ("werbeausspielung", "werbepartner", "drittanbieter"),
                    ("advertiser", "third parties"),
                ),
            ),
        ),
        TaxonomyAttribute(
            "Purpose",
            (
                _value(
                    "Advertising",
                    ("personalisierte werbung", "interessenbezogene werbung"),
                    ("personalised advertising", "interest-based advertising"),
                ),
                _value(
                    "Measurement",
                    ("reichweitenmessung", "messungen"),
                    ("audience measurement", "measurement"),
                ),
            ),
        ),
    ),
)

#: GDPR data-subject rights and the article numbers they live in.
DATA_SUBJECT_RIGHTS = {
    15: _value("Access", ("art. 15",), ("art. 15",)),
    16: _value("Rectification", ("art. 16",), ("art. 16",)),
    17: _value("Erasure", ("art. 17",), ("art. 17",)),
    18: _value("RestrictionOfProcessing", ("art. 18",), ("art. 18",)),
    20: _value("DataPortability", ("art. 20",), ("art. 20",)),
    21: _value("ObjectToProcessing", ("art. 21",), ("art. 21",)),
    77: _value("LodgeComplaint", ("art. 77",), ("art. 77",)),
}

ALL_CATEGORIES = (FIRST_PARTY_COLLECTION, THIRD_PARTY_SHARING)


def all_values() -> list[TaxonomyValue]:
    values: list[TaxonomyValue] = []
    for category in ALL_CATEGORIES:
        for attribute in category.attributes:
            values.extend(attribute.values)
    values.extend(DATA_SUBJECT_RIGHTS.values())
    return values
