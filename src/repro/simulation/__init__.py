"""Synthetic-world generation.

Builds the simulated European HbbTV ecosystem the measurement framework
runs against: satellites and channels (including everything the
filtering funnel discards), broadcaster groups with their consent-notice
brandings and privacy policies, and the third-party tracker population.
All generation is seeded and calibrated against the paper's reported
numbers (see :mod:`repro.simulation.params`).

The package-level ``run_study``/``default_study`` re-exports are
deprecated in favour of the :class:`repro.api.Study` facade — they
still work (delegating to :mod:`repro.simulation.study` unchanged) but
emit :class:`DeprecationWarning`.  Internal code imports the ``study``
module directly and never sees the warning.
"""

import warnings

from repro.simulation.study import (
    StudyContext,
    clear_study_cache,
    fault_plan_for_world,
    make_context,
)
from repro.simulation.study import default_study as _default_study
from repro.simulation.study import run_study as _run_study
from repro.simulation.world import World, build_world

__all__ = [
    "World",
    "build_world",
    "StudyContext",
    "make_context",
    "run_study",
    "default_study",
    "clear_study_cache",
    "fault_plan_for_world",
]


def run_study(*args, **kwargs):
    """Deprecated alias for :func:`repro.simulation.study.run_study`.

    Prefer ``repro.api.Study(...).run(...)``, which returns a bundled
    :class:`~repro.api.StudyResult` instead of a raw context.
    """
    warnings.warn(
        "repro.simulation.run_study is deprecated; "
        "use repro.api.Study(...).run(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_study(*args, **kwargs)


def default_study(*args, **kwargs):
    """Deprecated alias for :func:`repro.simulation.study.default_study`.

    Prefer ``repro.api.Study(...).run(...)``; the facade shares the
    analysis cache, so repeat analyses stay cheap without the study
    memo.
    """
    warnings.warn(
        "repro.simulation.default_study is deprecated; "
        "use repro.api.Study(...).run(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _default_study(*args, **kwargs)
