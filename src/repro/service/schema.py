"""The canonical JSON schema of service submissions.

One submission describes one study or fleet: *what* to measure
(``seed``, ``scale``, ``households``) plus *how* to execute it (an
``options`` object — the JSON spelling of
:class:`~repro.core.options.ExecutionOptions`).  Parsing is strict:
unknown keys, wrong types, and invalid preset names all raise
:class:`SchemaError` with every problem listed, which the routes layer
turns into a 400 body the client can actually act on.

``Submission.key()`` is the dedup identity: the sha256 of the
canonical submission JSON, where options contribute only their
:meth:`~repro.core.options.ExecutionOptions.canonical` projection
(``workers`` and ``cache`` can never change output bytes).  Two
submissions with equal keys are byte-for-byte the same study, which is
what lets the job manager attach the second to the first — or serve it
straight from the analysis cache's disk store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

from repro.core.options import ExecutionOptions, OptionsError

__all__ = ["SchemaError", "Submission", "parse_submission"]

#: Accepted top-level keys, per endpoint kind.
STUDY_KEYS = frozenset({"seed", "scale", "options"})
FLEET_KEYS = STUDY_KEYS | {"households"}

KINDS = ("study", "fleet")


class SchemaError(ValueError):
    """A submission body the schema rejects, with per-field messages."""

    def __init__(self, errors) -> None:
        if isinstance(errors, str):
            errors = [errors]
        self.errors = list(errors)
        super().__init__("; ".join(self.errors))


@dataclass(frozen=True)
class Submission:
    """One validated study/fleet request, ready to execute or dedup."""

    kind: str
    seed: int
    scale: float
    households: int
    options: ExecutionOptions

    def canonical(self) -> dict:
        """The JSON object the dedup key hashes (execution identity)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "scale": self.scale,
            "households": self.households,
            "options": self.options.canonical(),
        }

    def key(self) -> str:
        """sha256 of the canonical JSON — the service's dedup identity."""
        encoded = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def with_options(self, options: ExecutionOptions) -> "Submission":
        return replace(self, options=options)


def parse_submission(payload, kind: str = "study") -> Submission:
    """Validate one request body into a :class:`Submission`.

    ``scale`` is resolved to its effective value here (the configured
    default when omitted), so the dedup key names the scale that will
    actually run, not the spelling the client used.
    """
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    if not isinstance(payload, dict):
        raise SchemaError(
            f"body must be a JSON object, got {type(payload).__name__}"
        )
    allowed = FLEET_KEYS if kind == "fleet" else STUDY_KEYS
    errors: list[str] = []
    unknown = sorted(set(payload) - allowed)
    if unknown:
        errors.append(
            f"unknown key(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )

    seed = payload.get("seed", 7)
    if isinstance(seed, bool) or not isinstance(seed, int):
        errors.append(f"seed must be an integer, got {seed!r}")
        seed = 7

    scale = payload.get("scale")
    if scale is not None and (
        isinstance(scale, bool) or not isinstance(scale, (int, float))
    ):
        errors.append(f"scale must be a positive number or null, got {scale!r}")
        scale = None
    elif scale is not None and scale <= 0:
        errors.append(f"scale must be positive, got {scale!r}")
        scale = None
    if scale is None:
        from repro.simulation.study import configured_scale

        scale = configured_scale()

    households = payload.get("households", 1)
    if isinstance(households, bool) or not isinstance(households, int):
        errors.append(f"households must be an integer, got {households!r}")
        households = 1
    elif households < 1:
        errors.append(f"households must be >= 1, got {households}")
        households = 1

    options_payload = payload.get("options")
    options = ExecutionOptions()
    if options_payload is not None:
        try:
            options = ExecutionOptions.from_json(options_payload)
        except OptionsError as err:
            errors.append(f"options: {err}")

    if errors:
        raise SchemaError(errors)
    return Submission(
        kind=kind,
        seed=seed,
        scale=float(scale),
        households=households,
        options=options,
    )
