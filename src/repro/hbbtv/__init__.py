"""The HbbTV application layer.

Models the HTML5 applications channels deliver on top of the linear
programme: what they load, which trackers they embed, which overlays
they draw (including consent notices and media libraries), and how they
react to the remote control's colored buttons.
"""

from repro.hbbtv.app import (
    AppScreen,
    EmbeddedService,
    HbbTVApplication,
    ScreenKind,
    ServiceKind,
)
from repro.hbbtv.consent import (
    ConsentChoice,
    ConsentNoticeMachine,
    NoticeButton,
    NoticeStyle,
    STANDARD_NOTICE_STYLES,
)
from repro.hbbtv.media_library import MediaLibrary, PrivacyPointer
from repro.hbbtv.overlay import OverlayKind, PrivacyContentKind, ScreenState
from repro.hbbtv.runtime import AppRuntime

__all__ = [
    "HbbTVApplication",
    "EmbeddedService",
    "ServiceKind",
    "AppScreen",
    "ScreenKind",
    "AppRuntime",
    "OverlayKind",
    "PrivacyContentKind",
    "ScreenState",
    "ConsentNoticeMachine",
    "ConsentChoice",
    "NoticeStyle",
    "NoticeButton",
    "STANDARD_NOTICE_STYLES",
    "MediaLibrary",
    "PrivacyPointer",
]
