"""Ablations over the detection heuristics' design parameters.

Three knobs the paper adopts from prior work, swept here to show the
operating points are stable:

* the 45-byte tracking-pixel size threshold,
* the 10–25-character identifier-length window of the sync heuristic,
* the 15-minute channel-attribution window of the proxy.
"""

from benchmarks.conftest import emit
from repro.analysis.pixels import analyze_pixels


def test_ablation_pixel_threshold(benchmark, flows):
    thresholds = (20, 35, 45, 100, 500, 2000)

    def sweep():
        return {t: analyze_pixels(flows, size_threshold=t) for t in thresholds}

    reports = benchmark(sweep)

    lines = [f"{'threshold (bytes)':>18} {'pixel requests':>15} {'share':>8}"]
    for threshold in thresholds:
        report = reports[threshold]
        lines.append(
            f"{threshold:>18} {report.pixel_count:>15,} "
            f"{report.traffic_share:>8.1%}"
        )
    emit("Ablation — tracking-pixel size threshold", "\n".join(lines))

    counts = [reports[t].pixel_count for t in thresholds]
    assert counts == sorted(counts)  # monotone in the threshold
    # The paper's 45-byte point sits on a plateau: real pixels are tiny,
    # real content is big, so 35→100 bytes barely changes the count …
    assert reports[100].pixel_count <= reports[45].pixel_count * 1.05
    # … while a threshold large enough to swallow content images would.
    assert reports[2000].pixel_count > reports[45].pixel_count


def test_ablation_id_length_window(benchmark, study, cookie_records):
    windows = ((10, 25), (5, 40), (16, 16), (26, 64))

    def passes(value, low, high):
        if not (low <= len(value) <= high):
            return False
        if value.isdigit():
            timestamp = float(value)
            if study.period_start <= timestamp <= study.period_end:
                return False  # the heuristic's timestamp exclusion
        return True

    def sweep():
        return {
            (low, high): sum(
                1
                for record in cookie_records
                if passes(record.cookie.value, low, high)
            )
            for low, high in windows
        }

    counts = benchmark(sweep)

    lines = [f"{'length window':>14} {'potential IDs':>14}"]
    for window in windows:
        lines.append(f"{str(window):>14} {counts[window]:>14,}")
    emit("Ablation — identifier-length window", "\n".join(lines))

    assert counts[(5, 40)] >= counts[(10, 25)] >= counts[(16, 16)]


def test_ablation_attribution_window(benchmark):
    """Shorter attribution windows drop late flows to unattributed."""
    from repro.net.http import HttpRequest
    from repro.proxy.attribution import ChannelAttributor

    def sweep():
        results = {}
        for window in (60.0, 300.0, 600.0, 15 * 60.0):
            attributor = ChannelAttributor(window_seconds=window)
            attributor.set_channel("ch1", "Channel", at=0.0)
            attributed = 0
            for offset in range(0, 1200, 30):
                request = HttpRequest(
                    "GET", "http://x.de/", timestamp=float(offset)
                )
                if attributor.attribute(request)[0]:
                    attributed += 1
            results[window] = attributed
        return results

    results = benchmark(sweep)
    lines = [f"{'window (s)':>11} {'attributed/40 requests':>23}"]
    for window, attributed in sorted(results.items()):
        lines.append(f"{window:>11.0f} {attributed:>23}")
    emit("Ablation — channel-attribution window", "\n".join(lines))

    ordered = [results[w] for w in sorted(results)]
    assert ordered == sorted(ordered)
    assert results[15 * 60.0] == 31  # everything within the 900 s visit
