"""Tests for the ABP-lite and hosts-file filter engines."""

import pytest

from repro.analysis.filterlists import (
    AbpFilterList,
    FilterListSuite,
    HostsFilterList,
    easylist,
    easyprivacy,
    kamran,
    perflyst,
    pihole,
)
from repro.net.http import HttpRequest, pixel_response
from repro.proxy.flow import Flow


def make_flow(url):
    return Flow(request=HttpRequest("GET", url), response=pixel_response())


class TestAbpEngine:
    def test_domain_anchor_matches_domain_and_subdomains(self):
        rules = AbpFilterList("t", "||tracker.com^\n")
        assert rules.matches("http://tracker.com/x")
        assert rules.matches("https://cdn.tracker.com/y")
        assert not rules.matches("http://nottracker.com/x")
        assert not rules.matches("http://tracker.com.evil.de/x")

    def test_domain_anchor_with_path(self):
        rules = AbpFilterList("t", "||host.de/ads\n")
        assert rules.matches("http://host.de/ads/banner")
        assert not rules.matches("http://host.de/content")

    def test_substring_rule(self):
        rules = AbpFilterList("t", "/adserver/\n")
        assert rules.matches("http://any.de/adserver/slot")
        assert not rules.matches("http://any.de/content/slot")

    def test_exception_rule_wins(self):
        rules = AbpFilterList("t", "||site.de^\n@@||site.de/allowed^\n")
        assert rules.matches("http://site.de/blocked")
        assert not rules.matches("http://site.de/allowed/x")

    def test_comments_headers_cosmetics_ignored(self):
        text = "! comment\n[Adblock Plus 2.0]\nsite.de##.ad-banner\n||real.com^\n"
        rules = AbpFilterList("t", text)
        assert len(rules) == 1
        assert rules.matches("http://real.com/")

    def test_rule_options_stripped(self):
        rules = AbpFilterList("t", "||imgtracker.com^$image,third-party\n")
        assert rules.matches("http://imgtracker.com/a.gif")

    def test_invalid_url_never_matches(self):
        rules = AbpFilterList("t", "||x.com^\n")
        assert not rules.matches("not a url")


class TestHostsEngine:
    def test_exact_host(self):
        rules = HostsFilterList("t", "0.0.0.0 ad.tracker.com\n")
        assert rules.matches_host("ad.tracker.com")
        assert not rules.matches_host("other.tracker.com")

    def test_bare_registrable_domain_covers_subdomains(self):
        rules = HostsFilterList("t", "tracker.com\n")
        assert rules.matches_host("tracker.com")
        assert rules.matches_host("deep.sub.tracker.com")

    def test_subdomain_entry_does_not_cover_siblings(self):
        rules = HostsFilterList("t", "0.0.0.0 a.tracker.com\n")
        assert not rules.matches_host("b.tracker.com")

    def test_comments_and_localhost_formats(self):
        text = "# header\n127.0.0.1 legacy.de\n0.0.0.0 modern.de # inline\n"
        rules = HostsFilterList("t", text)
        assert rules.matches_host("legacy.de")
        assert rules.matches_host("modern.de")

    def test_matches_url_form(self):
        rules = HostsFilterList("t", "0.0.0.0 t.de\n")
        assert rules.matches("http://t.de/path?x=1")


class TestEmbeddedLists:
    def test_lists_parse_nonempty(self):
        for build in (easylist, easyprivacy, pihole, perflyst, kamran):
            assert len(build()) > 3

    def test_web_lists_know_classic_adtech(self):
        assert easylist().matches("https://ad.doubleclick.net/pixel")
        assert easyprivacy().matches("http://www.google-analytics.com/hit")
        assert pihole().matches_host("stats.xiti.com")

    def test_web_lists_miss_hbbtv_native_trackers(self):
        # The paper's central Table III finding.
        suite = FilterListSuite()
        assert not suite.flags_url("http://track.tvping.com/track.gif?c=x")

    def test_smart_tv_lists_narrower_than_pihole(self):
        # Perflyst and Kamran know platform telemetry, not HbbTV.
        assert perflyst().matches_host("events.samsungads.com")
        assert kamran().matches_host("events.samsungads.com")
        assert not perflyst().matches_host("stats.xiti.com")
        assert not kamran().matches_host("ads.smartclip.net")

    def test_house_ad_exception(self):
        assert not easylist().matches(
            "http://hbbtv.ard-verbund.de/adserver/house/banner.gif"
        )
        assert easylist().matches("http://other.de/adserver/slot")


class TestSuiteCoverage:
    def test_coverage_counts(self):
        suite = FilterListSuite()
        flows = [
            make_flow("https://ad.doubleclick.net/track.gif"),
            make_flow("http://track.tvping.com/track.gif"),
            make_flow("http://www.google-analytics.com/hit?ch=x"),
        ]
        coverage = suite.coverage(flows, "Test")
        assert coverage.total == 3
        assert coverage.on_easylist == 1
        assert coverage.on_easyprivacy == 1
        assert coverage.on_pihole == 2  # doubleclick + google-analytics

    def test_flags_url_union(self):
        suite = FilterListSuite()
        assert suite.flags_url("https://ad.doubleclick.net/x")
        assert suite.flags_url("http://de.ioam.de/hit")
        assert not suite.flags_url("http://hbbtv.example.de/app")
