"""Tests for filter-rule derivation (the paper's future-work feature)."""

import pytest

from repro.analysis.rulegen import (
    derive_rules,
    score_blocking,
)
from repro.net.http import HttpRequest, html_response, pixel_response
from repro.proxy.flow import Flow


def pixel_flow(url, channel="ch1"):
    return Flow(
        request=HttpRequest("GET", url),
        response=pixel_response(),
        channel_id=channel,
    )


def page_flow(url, channel="ch1"):
    return Flow(
        request=HttpRequest("GET", url),
        response=html_response("<html>content page</html>"),
        channel_id=channel,
    )


FIRST_PARTIES = {"ch1": "channel.de", "ch2": "channel.de"}


def build_flows():
    flows = []
    # Unlisted HbbTV tracker: pure pixel traffic on two channels.
    for channel in ("ch1", "ch2"):
        flows.extend(
            pixel_flow("http://px.newtracker.de/track.gif", channel)
            for _ in range(6)
        )
    # Already-listed web tracker.
    flows.extend(
        pixel_flow("https://ad.doubleclick.net/track.gif") for _ in range(6)
    )
    # First party serving both app pages and a beacon.
    flows.extend(page_flow("http://app.channel.de/index.html") for _ in range(6))
    flows.extend(pixel_flow("http://app.channel.de/beacon.gif") for _ in range(6))
    # Mixed host below the precision threshold.
    flows.extend(page_flow("http://mixed.de/page") for _ in range(8))
    flows.extend(pixel_flow("http://mixed.de/p.gif") for _ in range(2))
    return flows


class TestDeriveRules:
    def test_unlisted_tracker_gets_rule(self):
        result = derive_rules(build_flows(), FIRST_PARTIES)
        hosts = [rule.host for rule in result.rules]
        assert hosts == ["px.newtracker.de"]

    def test_listed_tracker_skipped(self):
        result = derive_rules(build_flows(), FIRST_PARTIES)
        assert result.skipped_already_listed >= 1

    def test_first_party_never_blocked(self):
        result = derive_rules(build_flows(), FIRST_PARTIES)
        assert result.skipped_first_party >= 1
        assert all("channel.de" not in rule.host for rule in result.rules)

    def test_low_confidence_hosts_skipped(self):
        result = derive_rules(build_flows(), FIRST_PARTIES)
        assert result.skipped_low_confidence >= 1
        assert all(rule.host != "mixed.de" for rule in result.rules)

    def test_min_requests_threshold(self):
        flows = [pixel_flow("http://rare.de/p.gif")]
        result = derive_rules(flows, FIRST_PARTIES, min_requests=5)
        assert result.rules == []

    def test_rule_rendering(self):
        result = derive_rules(build_flows(), FIRST_PARTIES)
        line = result.rules[0].as_hosts_line()
        assert line.startswith("0.0.0.0 px.newtracker.de")
        assert "channels" in line

    def test_derived_hosts_list_matches(self):
        derived = derive_rules(build_flows(), FIRST_PARTIES).as_hosts_list()
        assert derived.matches_host("px.newtracker.de")
        assert not derived.matches_host("app.channel.de")

    def test_as_text_has_header(self):
        text = derive_rules(build_flows(), FIRST_PARTIES).as_text()
        assert text.startswith("# HbbTV tracker hosts")


class TestScoring:
    def test_derived_list_improves_recall(self):
        from repro.analysis.filterlists import FilterListSuite

        flows = build_flows()
        suite = FilterListSuite()
        web_only = score_blocking("web", flows, [suite.pihole, suite.easylist])
        derived = derive_rules(flows, FIRST_PARTIES).as_hosts_list()
        augmented = score_blocking(
            "web+derived", flows, [suite.pihole, suite.easylist, derived]
        )
        assert augmented.recall > web_only.recall
        assert augmented.false_block_rate == 0.0

    def test_score_fields(self):
        flows = build_flows()
        derived = derive_rules(flows, FIRST_PARTIES).as_hosts_list()
        score = score_blocking("derived", flows, [derived])
        assert score.blocked_tracking == 12  # the newtracker pixels
        assert score.total_tracking > score.blocked_tracking
        assert score.total_benign > 0

    def test_empty_flows(self):
        score = score_blocking("empty", [], [])
        assert score.recall == 0.0
        assert score.false_block_rate == 0.0
