"""Tests for HTTP message types and canned response builders."""

from repro.net.http import (
    Headers,
    HttpRequest,
    HttpResponse,
    TRANSPARENT_GIF,
    html_response,
    javascript_response,
    not_found_response,
    pixel_response,
    redirect_response,
)


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "text/html")])
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_get_default(self):
        assert Headers().get("X-Missing", "fallback") == "fallback"
        assert Headers().get("X-Missing") is None

    def test_multiple_set_cookie_preserved(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2; Path=/")
        assert headers.get_all("set-cookie") == ["a=1", "b=2; Path=/"]

    def test_set_replaces_all(self):
        headers = Headers([("X", "1"), ("x", "2")])
        headers.set("X", "3")
        assert headers.get_all("X") == ["3"]

    def test_set_preserves_position_of_first_occurrence(self):
        # Regression: set() used to remove-then-append, pushing the
        # header to the end and reordering the wire format.
        headers = Headers([("A", "1"), ("X", "old"), ("B", "2"), ("x", "dup")])
        headers.set("X", "new")
        assert list(headers) == [("A", "1"), ("X", "new"), ("B", "2")]

    def test_set_appends_when_absent(self):
        headers = Headers([("A", "1")])
        headers.set("X", "3")
        assert list(headers) == [("A", "1"), ("X", "3")]

    def test_remove(self):
        headers = Headers([("A", "1"), ("B", "2")])
        headers.remove("a")
        assert "A" not in headers
        assert "B" in headers

    def test_contains_and_len(self):
        headers = Headers([("A", "1")])
        assert "a" in headers
        assert len(headers) == 1

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        copy = original.copy()
        copy.add("B", "2")
        assert "B" not in original

    def test_iteration_order(self):
        pairs = [("A", "1"), ("B", "2"), ("A", "3")]
        assert list(Headers(pairs)) == pairs


class TestHttpRequest:
    def test_is_https(self):
        assert HttpRequest("GET", "https://h.de/").is_https
        assert not HttpRequest("GET", "http://h.de/").is_https

    def test_host_and_etld1(self):
        request = HttpRequest("GET", "https://a.tracker.com/p")
        assert request.host == "a.tracker.com"
        assert request.etld1 == "tracker.com"

    def test_referer(self):
        request = HttpRequest(
            "GET", "http://h.de/", Headers([("Referer", "http://r.de/")])
        )
        assert request.referer == "http://r.de/"

    def test_query_params(self):
        request = HttpRequest("GET", "http://h.de/?id=abc&v=2")
        assert request.query_params() == {"id": "abc", "v": "2"}

    def test_body_text(self):
        request = HttpRequest("POST", "http://h.de/", body=b"key=value")
        assert request.body_text() == "key=value"


class TestHttpResponse:
    def test_content_type_strips_parameters(self):
        response = html_response("<html></html>")
        assert response.content_type == "text/html"

    def test_is_image(self):
        assert pixel_response().is_image
        assert not html_response("x").is_image

    def test_is_javascript(self):
        assert javascript_response("var x;").is_javascript

    def test_is_html(self):
        assert html_response("<p>hi</p>").is_html

    def test_size(self):
        assert pixel_response().size == len(TRANSPARENT_GIF)

    def test_pixel_fits_tracking_threshold(self):
        # The paper's pixel heuristic requires image responses < 45 bytes.
        assert pixel_response().size < 45

    def test_redirect(self):
        response = redirect_response("https://partner.com/sync?id=1")
        assert response.is_redirect
        assert response.location == "https://partner.com/sync?id=1"

    def test_non_redirect_has_no_location(self):
        assert not html_response("x").is_redirect
        assert html_response("x").location is None

    def test_reason_phrases(self):
        assert HttpResponse(status=200).reason == "OK"
        assert HttpResponse(status=404).reason == "Not Found"
        assert HttpResponse(status=999).reason == "Unknown"

    def test_not_found(self):
        assert not_found_response().status == 404

    def test_set_cookie_headers(self):
        response = HttpResponse()
        response.headers.add("Set-Cookie", "a=1")
        response.headers.add("Set-Cookie", "b=2")
        assert response.set_cookie_headers() == ["a=1", "b=2"]
