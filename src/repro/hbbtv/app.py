"""Declarative HbbTV application specifications.

A channel's application is described as data: which trackers it embeds
(and how often they beacon), what each colored button opens, whether a
consent notice appears on start, and what the app leaks about the device
and the running programme.  The :class:`~repro.hbbtv.runtime.AppRuntime`
interprets these specs against the simulated network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.hbbtv.consent import NoticeStyle
from repro.hbbtv.media_library import MediaLibrary
from repro.keys import Key
from repro.trackers.base import TrackerService


class ServiceKind(enum.Enum):
    """How an embedded service is exercised by the app."""

    PIXEL = "pixel"  # periodic 1x1 beacons
    ANALYTICS = "analytics"  # periodic audience-measurement hits
    FINGERPRINT = "fingerprint"  # script load at start + one collect
    SYNC = "sync"  # one redirect chain at start
    STATIC = "static"  # plain resource loads at start
    AD = "ad"  # ad slot request with campaign/brand parameters


@dataclass
class EmbeddedService:
    """One service an application talks to.

    ``period_s`` controls periodic kinds (PIXEL, ANALYTICS); one-shot
    kinds ignore it.  ``leaks_device_info`` / ``leaks_show_info`` append
    the corresponding query parameters — this is what §V-B's keyword
    search finds.  ``url`` overrides the service's default endpoint and
    is required when ``service`` is None (plain static URLs).
    """

    kind: ServiceKind
    service: Optional[TrackerService] = None
    url: str = ""
    period_s: float = 0.0
    leaks_device_info: bool = False
    leaks_show_info: bool = False
    extra_params: dict[str, str] = field(default_factory=dict)
    #: Only exercised after this colored button was pressed (None = from
    #: app start).  Button runs loading extra trackers is why the paper
    #: sees significantly more traffic on Red/Yellow.
    after_button: Optional[Key] = None
    #: If set, the service honours a declared consent choice and stays
    #: quiet until consent is accepted.  Most HbbTV trackers do not.
    requires_consent: bool = False

    def domain(self) -> str:
        if self.service is not None:
            return self.service.domain
        from repro.net.url import URL

        return URL.parse(self.url).host


class ScreenKind(enum.Enum):
    """What a colored button opens."""

    NONE = "none"
    MEDIA_LIBRARY = "media_library"
    PRIVACY_POLICY = "privacy_policy"
    PRIVACY_SETTINGS = "privacy_settings"  # re-opens the consent notice
    TEXT_PAGE = "text_page"  # EPG-style / teletext-style overlay ("Other")
    CHANNEL_TECH_MESSAGE = "channel_tech_message"


@dataclass
class AppScreen:
    """The overlay behind one colored button."""

    kind: ScreenKind = ScreenKind.NONE
    media_library: Optional[MediaLibrary] = None
    policy_url: str = ""
    #: Extra requests fired when the screen opens (page bundles, styles).
    load_urls: tuple[str, ...] = ()
    caption: str = ""
    #: PRIVACY_SETTINGS only: render policy + cookie controls as a split
    #: screen even without a consent-notice style (the RBB/MDR-like
    #: hybrid overlays).
    show_cookie_controls: bool = False


@dataclass
class HbbTVApplication:
    """Complete declarative spec for one channel's HbbTV application."""

    channel_id: str
    channel_name: str
    entry_url: str
    first_party_domain: str
    autostart: bool = True
    notice_style: Optional[NoticeStyle] = None
    services: list[EmbeddedService] = field(default_factory=list)
    button_screens: dict[Key, AppScreen] = field(default_factory=dict)
    #: Policy URL answered by the first party (or a provider such as the
    #: smartclip-like host); '' if the channel publishes none.
    privacy_policy_url: str = ""
    #: Whether the app uses HTTPS for its own resources.  Most HbbTV
    #: traffic in the study was plain HTTP (Table I's HTTPS share).
    uses_https: bool = False
    #: Local-storage objects the app writes on start:
    #: (origin domain, key, value kind).  Value kinds: "id" mints an
    #: identifier, "timestamp" stores the current time, anything else is
    #: stored verbatim.  Table I counts these objects per run.
    storage_writes: tuple[tuple[str, str, str], ...] = ()
    #: Seconds after which an unanswered autostart consent notice hides
    #: itself (0 = never).  TV notices routinely time out so the running
    #: programme stays watchable.
    notice_timeout_seconds: float = 0.0
    #: Declared tracking window (start_hour, end_hour) from the privacy
    #: policy, e.g. (17, 6) for "5 PM to 6 AM".  Purely declarative: the
    #: runtime does NOT enforce it, which is precisely the paper's
    #: headline discrepancy.
    declared_tracking_hours: Optional[tuple[int, int]] = None

    def screen_for(self, key: Key) -> AppScreen:
        return self.button_screens.get(key, AppScreen(ScreenKind.NONE))

    def periodic_services(self) -> list[EmbeddedService]:
        """Services that re-fire on a period (pixels, analytics, and
        fingerprint refreshers with a positive period)."""
        periodic_kinds = (
            ServiceKind.PIXEL,
            ServiceKind.ANALYTICS,
            ServiceKind.FINGERPRINT,
            ServiceKind.STATIC,  # content polling (EPG refresh)
        )
        return [
            s
            for s in self.services
            if s.kind in periodic_kinds and s.period_s > 0
        ]

    def oneshot_services(self) -> list[EmbeddedService]:
        """Everything that fires exactly once when its trigger happens."""
        periodic = set(map(id, self.periodic_services()))
        return [s for s in self.services if id(s) not in periodic]
