"""Tests for the top-level API, study context plumbing, and the
configured-scale environment knob."""

import os

import pytest

import repro
from repro.simulation.study import (
    DEFAULT_SCALE,
    SCALE_ENV_VAR,
    configured_scale,
    default_study,
)


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_run_default_study_memoized(self):
        first = repro.run_default_study(seed=9, scale=0.03)
        second = repro.run_default_study(seed=9, scale=0.03)
        assert first is second

    def test_table1_renders(self):
        context = repro.run_default_study(seed=9, scale=0.03)
        text = repro.table1(context.dataset)
        assert "General" in text
        assert "Yellow" in text


class TestConfiguredScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert configured_scale() == DEFAULT_SCALE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.5")
        assert configured_scale() == 0.5

    def test_garbage_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "not-a-number")
        with pytest.warns(UserWarning, match="is not a number"):
            assert configured_scale() == DEFAULT_SCALE

    def test_nonpositive_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "-1")
        with pytest.warns(UserWarning, match="must be positive"):
            assert configured_scale() == DEFAULT_SCALE

    def test_zero_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0")
        with pytest.warns(UserWarning, match="must be positive"):
            assert configured_scale() == DEFAULT_SCALE

    def test_valid_value_does_not_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.25")
        assert configured_scale() == 0.25
        assert not recwarn.list


class TestStudyContext:
    @pytest.fixture(scope="class")
    def context(self):
        return default_study(seed=9, scale=0.03)

    def test_period_spans_runs(self, context):
        assert context.period_end > context.period_start

    def test_first_party_overrides_exposed(self, context):
        assert isinstance(context.first_party_overrides, dict)

    def test_world_reachable(self, context):
        assert context.world.seed == 9
        assert context.dataset is not None
