"""The webOS TV Developer API facade.

The study drove the TV through LG's developer API (via PyWebOSTV) to
switch channels, query metadata, and take screenshots, and pulled
cookies/storage over SSH from the rooted TV.  The paper notes the API
was flaky enough that the TV needed physical restarts — modelled here as
an operation budget after which calls fail until :meth:`restart_tv`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dvb.channel import BroadcastChannel
from repro.keys import Key
from repro.net.cookies import Cookie
from repro.net.storage import StorageEntry
from repro.tv.device import SmartTV
from repro.tv.screenshot import Screenshot


class WebOSApiError(RuntimeError):
    """The TV's API stopped responding (needs a physical restart)."""


@dataclass
class ChannelMetadataView:
    """The metadata dict the developer API returns for a channel."""

    channel_id: str
    name: str
    is_radio: bool
    is_encrypted: bool
    is_invisible: bool
    satellite: str

    @classmethod
    def of(cls, channel: BroadcastChannel) -> "ChannelMetadataView":
        return cls(
            channel_id=channel.channel_id,
            name=channel.name,
            is_radio=channel.meta.is_radio,
            is_encrypted=channel.meta.is_encrypted,
            is_invisible=channel.meta.is_invisible,
            satellite=channel.satellite_name,
        )


class WebOSApi:
    """Developer-API access to a :class:`SmartTV`.

    ``max_operations_between_restarts`` injects the real API's
    flakiness; ``None`` disables it (the default for analyses that do
    not exercise failure handling).
    """

    def __init__(
        self,
        tv: SmartTV,
        max_operations_between_restarts: int | None = None,
    ) -> None:
        self.tv = tv
        self.max_operations = max_operations_between_restarts
        self.operations_since_restart = 0
        self.restarts = 0

    def _operation(self) -> None:
        if (
            self.max_operations is not None
            and self.operations_since_restart >= self.max_operations
        ):
            raise WebOSApiError("webOS API unresponsive; restart the TV")
        self.operations_since_restart += 1

    # -- API surface ---------------------------------------------------------

    def list_channels(self) -> list[ChannelMetadataView]:
        self._operation()
        return [ChannelMetadataView.of(c) for c in self.tv.channel_list]

    def get_channel_metadata(self) -> ChannelMetadataView | None:
        self._operation()
        if self.tv.current_channel is None:
            return None
        return ChannelMetadataView.of(self.tv.current_channel)

    def switch_channel(self, channel: BroadcastChannel) -> None:
        self._operation()
        self.tv.tune(channel)

    def send_key(self, key: Key) -> None:
        self._operation()
        self.tv.press(key)

    def take_screenshot(self) -> Screenshot:
        self._operation()
        return self.tv.screenshot()

    # -- rooted-TV extraction (SSH on the real device) -------------------------

    def extract_cookies(self) -> list[Cookie]:
        """Dump the Chromium cookie jar (no operation budget: SSH path)."""
        return self.tv.browser.cookie_jar.all()

    def extract_local_storage(self) -> list[StorageEntry]:
        return self.tv.browser.local_storage.all()

    # -- recovery -----------------------------------------------------------------

    def restart_tv(self) -> None:
        """Physically power-cycle the TV, clearing the API wedge."""
        self.tv.power_off()
        self.tv.power_on()
        self.operations_since_restart = 0
        self.restarts += 1
