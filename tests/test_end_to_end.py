"""End-to-end tests: the full study on a generated world reproduces the
paper's qualitative findings (the shape criteria from DESIGN.md §5)."""

import pytest

from repro.analysis.channels import category_report, channel_level_report
from repro.analysis.children import children_case_study
from repro.analysis.cookies import cross_channel_report, general_cookie_report
from repro.analysis.cookiesync import detect_cookie_syncing
from repro.analysis.filterlists import FilterListSuite
from repro.analysis.fingerprinting import analyze_fingerprinting
from repro.analysis.graph import analyze_graph, build_ecosystem_graph, domain_degree
from repro.analysis.leakage import analyze_leakage
from repro.analysis.parties import identify_first_parties
from repro.analysis.pixels import analyze_pixels
from repro.analysis.tracking import TrackingClassifier
from repro.consent.annotate import (
    annotate_screenshots,
    channels_with_privacy_info,
    overlay_distribution,
    pointer_prevalence,
    privacy_prevalence,
)
from repro.hbbtv.overlay import OverlayKind
from repro.policy.corpus import collect_policies
from repro.policy.discrepancy import DiscrepancyKind, audit_discrepancies
from repro.policy.practices import annotate_practices
from repro.simulation.study import default_study

SCALE = 0.15


@pytest.fixture(scope="module")
def study():
    return default_study(seed=7, scale=SCALE)


@pytest.fixture(scope="module")
def flows(study):
    return list(study.dataset.all_flows())


@pytest.fixture(scope="module")
def first_parties(study, flows):
    return identify_first_parties(
        flows, manual_overrides=study.first_party_overrides
    )


@pytest.fixture(scope="module")
def annotations(study):
    return annotate_screenshots(study.dataset.all_screenshots())


class TestTrafficShape:
    def test_red_run_has_most_requests(self, study):
        counts = {
            name: run.http_request_count
            for name, run in study.dataset.runs.items()
        }
        assert counts["Red"] == max(counts.values())

    def test_https_share_low_everywhere(self, study):
        for run in study.dataset.runs.values():
            assert run.https_share < 0.10

    def test_general_has_lowest_https_share(self, study):
        shares = {n: r.https_share for n, r in study.dataset.runs.items()}
        assert shares["General"] <= min(shares["Red"], shares["Green"], shares["Blue"])


class TestPartyStructure:
    def test_every_measured_channel_has_first_party(self, study, first_parties):
        measured = study.dataset.channels_measured()
        identified = {c for c, fp in first_parties.items() if fp}
        # Channels whose stale signal-encoded endpoint is dead produce
        # only failed fetches and legitimately get no first party.
        dead = {
            truth.channel_id
            for truth in study.world.ground_truth.values()
            if truth.special == "dead-endpoint"
        }
        assert measured - dead <= identified

    def test_signal_encoded_trackers_not_first_parties(self, first_parties):
        # google-analytics-like preloads must never win.
        assert "google-analytics.com" not in first_parties.values()

    def test_manual_override_applied(self, study, first_parties):
        for channel_id, expected in study.first_party_overrides.items():
            assert first_parties[channel_id] == expected


class TestPixelsAndFingerprinting:
    def test_pixels_dominate_traffic(self, flows):
        report = analyze_pixels(flows)
        assert report.traffic_share > 0.4

    def test_single_party_dominates_pixels(self, flows):
        report = analyze_pixels(flows)
        party, count = report.dominant_party()
        assert party == "tvping.com"
        assert count > sum(report.requests_per_etld1.values()) * 0.5

    def test_most_channels_use_pixels(self, study, flows):
        report = analyze_pixels(flows)
        measured = study.dataset.channels_measured()
        assert len(report.channels_with_pixels) / len(measured) > 0.5

    def test_filter_lists_miss_most_pixels(self, flows):
        suite = FilterListSuite()
        pixels = analyze_pixels(flows)
        flagged = sum(
            1
            for flow in flows
            if flow.etld1 in pixels.pixel_etld1s
            and suite.flags_url(flow.url, flow.host)
        )
        assert flagged < pixels.pixel_count * 0.1

    def test_fingerprinting_mostly_first_party(self, flows, first_parties):
        report = analyze_fingerprinting(flows, first_parties)
        assert report.related_request_count > 0
        assert report.first_party_requests / report.related_request_count > 0.3


class TestFilterListGap:
    def test_lists_flag_tiny_share_of_urls(self, flows):
        suite = FilterListSuite()
        coverage = suite.coverage(flows)
        assert coverage.on_easylist / coverage.total < 0.02
        assert coverage.on_easyprivacy / coverage.total < 0.02
        assert coverage.on_pihole / coverage.total < 0.05

    def test_smart_tv_lists_block_less_than_pihole(self, flows):
        suite = FilterListSuite()
        coverage = suite.coverage(flows)
        assert coverage.on_perflyst < coverage.on_pihole
        assert coverage.on_kamran < coverage.on_perflyst


class TestCookieEcosystem:
    def test_cookiepedia_coverage_low(self, study):
        report = general_cookie_report(study.dataset.all_cookie_records())
        assert report.classified_share < 0.45

    def test_cross_channel_long_tail(self, study):
        report = cross_channel_report(study.dataset.all_cookie_records())
        assert report.skewness() > 0
        assert report.single_channel_parties() >= 1

    def test_cookie_syncing_rare(self, study, flows):
        report = detect_cookie_syncing(
            study.dataset.all_cookie_records(),
            flows,
            study.period_start,
            study.period_end,
        )
        assert report.potential_ids > 50
        assert len(report.syncing_domains()) <= 4
        assert report.runs_with_syncing() <= {"Red", "Green", "Blue"}

    def test_most_cookies_set_by_tracking_requests(self, study, flows):
        classifier = TrackingClassifier()
        tracking_urls = {f.url for f in flows if classifier.is_tracking(f)}
        from repro.analysis.cookies import tracking_set_share

        share = tracking_set_share(
            study.dataset.all_cookie_records(), tracking_urls
        )
        assert share > 0.3


class TestLeakageShape:
    def test_technical_data_reaches_few_third_parties(self, flows, first_parties):
        report = analyze_leakage(flows, first_parties)
        assert report.channels_leaking_technical
        assert 1 <= len(report.technical_receivers) <= 15

    def test_brand_evidence_found(self, flows, first_parties):
        report = analyze_leakage(flows, first_parties)
        assert report.brands_seen


class TestEcosystemGraph:
    def test_single_connected_component(self, flows, first_parties):
        graph = build_ecosystem_graph(flows, first_parties)
        report = analyze_graph(graph)
        assert report.is_single_component

    def test_platform_hubs_dominate(self, flows, first_parties):
        graph = build_ecosystem_graph(flows, first_parties)
        report = analyze_graph(graph)
        top_nodes = dict(report.top_degree_nodes[:6])
        platformish = {
            "ard-verbund.de",
            "rtl-interactive.de",
            "redbutton-p7.de",
            "hbbtv-suite.de",
            "tvservices.digital",
            "superrtl-family.de",
        }
        assert platformish & set(top_nodes)

    def test_most_embedded_third_party_has_low_degree(self, flows, first_parties):
        graph = build_ecosystem_graph(flows, first_parties)
        # tvping is on the most channels but rides platform SDKs.
        assert 1 <= domain_degree(graph, "tvping.com") <= 25

    def test_outlier_channel_exists(self, flows):
        report = channel_level_report(flows)
        outlier = report.outlier()
        assert outlier is not None
        # ~99% of the outlier's tracking goes to the tvping-like party
        # and only in the Red run.
        assert outlier.tracking_by_run.get("Red", 0) > (
            0.9 * outlier.tracking_requests
        )


class TestCategoriesAndChildren:
    def test_top_categories_carry_most_tracking(self, study, flows):
        report = channel_level_report(flows)
        by_category = category_report(report, study.world.categories)
        assert by_category.top5_request_share() > 0.8

    def test_children_tracked_like_everyone(self, study, flows):
        report = channel_level_report(flows)
        result = children_case_study(
            report,
            study.world.children_channel_ids,
            study.dataset.all_cookie_records(),
        )
        assert result.children_are_tracked
        assert result.comparison is not None
        assert result.comparison.p_value > 0.05  # no significant difference


class TestConsentShape:
    def test_tv_only_dominates_overlays(self, annotations):
        for run, row in overlay_distribution(annotations).items():
            assert row.count(OverlayKind.TV_ONLY) >= row.count(
                OverlayKind.PRIVACY
            ) or run == "Blue"

    def test_media_libraries_concentrate_on_red_yellow(self, annotations):
        rows = overlay_distribution(annotations)
        red_yellow = rows["Red"].count(OverlayKind.MEDIA_LIBRARY) + rows[
            "Yellow"
        ].count(OverlayKind.MEDIA_LIBRARY)
        others = rows["General"].count(OverlayKind.MEDIA_LIBRARY) + rows[
            "Blue"
        ].count(OverlayKind.MEDIA_LIBRARY)
        assert red_yellow > others

    def test_blue_run_has_highest_privacy_screenshot_share(self, annotations):
        rows = privacy_prevalence(annotations)
        blue = rows["Blue"].screenshot_share
        assert blue == max(row.screenshot_share for row in rows.values())

    def test_minority_of_channels_show_privacy_info(self, study, annotations):
        channels = channels_with_privacy_info(annotations)
        measured = study.dataset.channels_measured()
        assert 0.1 < len(channels) / len(measured) < 0.75

    def test_most_channels_show_pointers(self, study, annotations):
        pointers = pointer_prevalence(annotations)
        measured = study.dataset.channels_measured()
        assert len(pointers) / len(measured) > 0.5


class TestPolicyShape:
    @pytest.fixture(scope="class")
    def corpus(self, flows):
        return collect_policies(flows)

    def test_policies_found_in_every_run(self, corpus):
        counts = corpus.per_run_counts()
        assert set(counts) == {"General", "Red", "Green", "Blue", "Yellow"}

    def test_yellow_run_contributes_most(self, corpus):
        counts = corpus.per_run_counts()
        assert counts["Yellow"] == max(counts.values())

    def test_mostly_german(self, corpus):
        languages = corpus.per_language_counts()
        assert languages.get("de", 0) > sum(
            v for k, v in languages.items() if k != "de"
        )

    def test_dedup_collapses_copies(self, corpus):
        assert corpus.distinct_count() < len(corpus.documents)

    def test_near_duplicate_groups_exist(self, corpus):
        assert corpus.near_duplicate_groups()

    def test_majority_mention_hbbtv(self, corpus):
        distinct = list(corpus.distinct_texts().values())
        mentioning = sum(
            1 for d in distinct if annotate_practices(d.text).mentions_hbbtv
        )
        assert mentioning / len(distinct) > 0.5

    def test_five_pm_to_six_am_discrepancy(self, study, corpus, flows, first_parties):
        annotations_by_channel = {
            document.channel_id: annotate_practices(document.text)
            for document in corpus.documents
        }
        report = audit_discrepancies(
            flows, annotations_by_channel, first_parties
        )
        violations = report.by_kind(DiscrepancyKind.TIME_WINDOW_VIOLATION)
        assert violations
        violating = {v.channel_id for v in violations}
        assert violating & study.world.children_channel_ids
