"""One execution-options surface for the whole pipeline.

Before this module existed, three divergent keyword-argument lists
described *how* a study executes: :meth:`repro.api.Study.run`,
:func:`repro.fleet.run_fleet_study`, and the CLI each coerced preset
names into :class:`~repro.net.faults.FaultPlan` /
:class:`~repro.net.netsim.NetSimConfig` objects on their own, and the
fleet path silently lacked knobs the study path had.
:class:`ExecutionOptions` is the single frozen description they now
share — and, because every field is expressible as a JSON scalar, it
is also the job-submission schema of the study service
(:mod:`repro.service`) and the canonical serialization its dedup keys
hash.

The split of responsibilities mirrors :class:`~repro.api.Study`
itself: a ``Study`` pins *what* is measured (seed, scale, measurement
config), ``ExecutionOptions`` pins *how* (worker/shard counts, fault
and netsim presets, resilience, caching, dataset backend, whether the
§IV-B funnel runs first).  :meth:`canonical` additionally distinguishes
the knobs that can change output bytes from the ones that cannot
(``workers`` and ``cache`` never do — that is the determinism
contract), which is what lets the service dedupe submissions that
differ only in execution mechanics.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields, replace
from typing import Any

from repro.core.columnar import validate_backend
from repro.core.resilience import ResiliencePolicy
from repro.net.faults import FAULT_PRESET_NAMES, FaultPlan
from repro.net.netsim import (
    NETSIM_PRESET_NAMES,
    UPLINK_PRESET_NAMES,
    NetSimConfig,
    UplinkConfig,
)

__all__ = [
    "UNSET",
    "ExecutionOptions",
    "OptionsError",
    "resolve_options",
]

#: Sentinel for "the caller did not pass this keyword" — lets the
#: facade keep its classic keyword signature while detecting clashes
#: with an explicit ``options=``.
UNSET: Any = object()


class OptionsError(ValueError):
    """A keyword set or JSON payload that cannot become options.

    Subclasses :class:`ValueError` so call sites that predate the
    unified surface (``FaultPlan.preset`` raising on a bad name, the
    CLI's argparse failures) keep their exception contract.
    """


def _check_count(name: str, value) -> int | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise OptionsError(
            f"{name} must be a positive integer or null, "
            f"got {value!r} ({type(value).__name__})"
        )
    if value < 1:
        raise OptionsError(f"{name} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class ExecutionOptions:
    """How one study (or fleet) executes — everything but what it measures.

    ``faults`` and ``netsim`` accept a preset name (the JSON-expressible
    spelling) or a prebuilt plan/config object; ``"none"`` normalizes
    to ``"off"`` so equal semantics hash equally.  ``resilience`` is a
    :class:`ResiliencePolicy` (JSON spells the default policy ``true``).
    ``cache`` follows the facade's convention — ``True`` = process-wide
    default cache, ``False``/``None`` = no caching, a path = disk-backed
    cache, an existing :class:`~repro.cache.AnalysisCache` = used as-is.
    """

    workers: int | None = None
    shards: int | None = None
    faults: str | FaultPlan = "off"
    resilience: ResiliencePolicy | None = None
    netsim: str | NetSimConfig = "off"
    #: The shared neighbourhood aggregation link; rides on top of an
    #: active ``netsim`` (enforced below) and attaches to its config
    #: via :meth:`resolved_netsim`.
    uplink: str | UplinkConfig = "off"
    cache: Any = True
    backend: str = "objects"
    with_filtering: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workers", _check_count("workers", self.workers)
        )
        object.__setattr__(self, "shards", _check_count("shards", self.shards))

        faults = self.faults
        if faults is None:
            faults = "off"
        if isinstance(faults, str):
            if faults == "none":
                faults = "off"
            if faults not in FAULT_PRESET_NAMES:
                raise OptionsError(
                    f"unknown fault preset: {faults!r} "
                    f"(choose from {sorted(set(FAULT_PRESET_NAMES))})"
                )
        elif not isinstance(faults, FaultPlan):
            raise OptionsError(
                f"faults must be a preset name or FaultPlan, "
                f"got {type(faults).__name__}"
            )
        object.__setattr__(self, "faults", faults)

        netsim = self.netsim
        if netsim is None:
            netsim = "off"
        if isinstance(netsim, str):
            if netsim == "none":
                netsim = "off"
            if netsim not in NETSIM_PRESET_NAMES:
                raise OptionsError(
                    f"unknown netsim preset: {netsim!r} "
                    f"(choose from {sorted(set(NETSIM_PRESET_NAMES))})"
                )
        elif isinstance(netsim, NetSimConfig):
            if not netsim.is_active:
                netsim = "off"
        else:
            raise OptionsError(
                f"netsim must be a preset name or NetSimConfig, "
                f"got {type(netsim).__name__}"
            )
        object.__setattr__(self, "netsim", netsim)

        uplink = self.uplink
        if uplink is None:
            uplink = "off"
        if isinstance(uplink, str):
            if uplink == "none":
                uplink = "off"
            if uplink not in UPLINK_PRESET_NAMES:
                raise OptionsError(
                    f"unknown uplink preset: {uplink!r} "
                    f"(choose from {sorted(set(UPLINK_PRESET_NAMES))})"
                )
        elif isinstance(uplink, UplinkConfig):
            if not uplink.is_active:
                uplink = "off"
        else:
            raise OptionsError(
                f"uplink must be a preset name or UplinkConfig, "
                f"got {type(uplink).__name__}"
            )
        if uplink != "off" and netsim == "off":
            raise OptionsError(
                "uplink requires an active netsim preset (the shared "
                "link only exists inside the co-simulated transport; "
                "pass e.g. netsim='dsl' alongside uplink)"
            )
        object.__setattr__(self, "uplink", uplink)

        resilience = self.resilience
        if resilience is True:
            resilience = ResiliencePolicy()
        elif resilience is False:
            resilience = None
        elif resilience is not None and not isinstance(
            resilience, ResiliencePolicy
        ):
            raise OptionsError(
                f"resilience must be a ResiliencePolicy, a boolean, or "
                f"null, got {type(resilience).__name__}"
            )
        object.__setattr__(self, "resilience", resilience)

        if not isinstance(self.with_filtering, bool):
            raise OptionsError(
                f"with_filtering must be a boolean, "
                f"got {self.with_filtering!r}"
            )
        object.__setattr__(self, "backend", validate_backend(self.backend))

        cache = self.cache
        if isinstance(cache, os.PathLike):
            cache = os.fspath(cache)
        object.__setattr__(self, "cache", cache)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_json(cls, payload) -> "ExecutionOptions":
        """Validate and coerce one JSON object into options.

        The inverse of :meth:`to_json`: for any options value ``o``
        built from JSON, ``from_json(o.to_json()) == o`` (the service
        test suite pins this as a hypothesis property).  Unknown keys
        are rejected, never ignored — a typoed knob must not silently
        run with defaults.
        """
        if not isinstance(payload, dict):
            raise OptionsError(
                f"options must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise OptionsError(
                f"unknown option key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        for key in ("faults", "netsim", "uplink", "backend"):
            if key in payload and not isinstance(payload[key], (str, type(None))):
                raise OptionsError(
                    f"{key} must be a preset name string, "
                    f"got {type(payload[key]).__name__}"
                )
        if "resilience" in payload and not isinstance(
            payload["resilience"], (bool, type(None))
        ):
            raise OptionsError(
                "resilience must be true, false, or null in JSON, "
                f"got {type(payload['resilience']).__name__}"
            )
        if "cache" in payload and not isinstance(
            payload["cache"], (bool, str, type(None))
        ):
            raise OptionsError(
                "cache must be a boolean or a directory path in JSON, "
                f"got {type(payload['cache']).__name__}"
            )
        return cls(**payload)

    @classmethod
    def from_cli_args(cls, arguments) -> "ExecutionOptions":
        """Build options from the parsed ``python -m repro`` namespace.

        The one coercion path the CLI shares with the facade and the
        service: ``--faults``/``--netsim`` stay preset names,
        ``--no-cache`` beats ``--cache-dir``, and fault/netsim plans
        resolve later against the world via :meth:`fault_plan`.
        """
        if arguments.no_cache:
            cache: Any = False
        elif arguments.cache_dir is not None:
            cache = arguments.cache_dir
        else:
            cache = True
        return cls(
            workers=arguments.workers,
            shards=arguments.shards,
            faults=arguments.faults,
            netsim=arguments.netsim,
            uplink=getattr(arguments, "uplink", "off"),
            backend=arguments.backend,
            cache=cache,
        )

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        """The canonical JSON-scalar encoding of these options.

        Only preset-name spellings serialize: a custom
        :class:`FaultPlan`, a hand-tuned :class:`NetSimConfig`, a
        non-default :class:`ResiliencePolicy`, or a live cache object
        has no canonical JSON form, and pretending otherwise would make
        service dedup keys lie.  Those raise :class:`OptionsError`.
        """
        faults = self.faults
        if isinstance(faults, FaultPlan):
            if faults.is_empty:
                faults = "off"
            else:
                raise OptionsError(
                    "a custom FaultPlan is not JSON-expressible; "
                    "pass a preset name instead"
                )
        netsim = self.netsim
        if isinstance(netsim, NetSimConfig):
            name = netsim.preset_name
            if (
                name in NETSIM_PRESET_NAMES
                and NetSimConfig.preset(name) == netsim
            ):
                netsim = name
            else:
                raise OptionsError(
                    "a hand-built NetSimConfig is not JSON-expressible; "
                    "pass a preset name instead"
                )
        uplink = self.uplink
        if isinstance(uplink, UplinkConfig):
            name = uplink.preset_name
            if (
                name in UPLINK_PRESET_NAMES
                and UplinkConfig.preset(name) == uplink
            ):
                uplink = name
            else:
                raise OptionsError(
                    "a hand-built UplinkConfig is not JSON-expressible; "
                    "pass a preset name instead"
                )
        if self.resilience is None:
            resilience = False
        elif self.resilience == ResiliencePolicy():
            resilience = True
        else:
            raise OptionsError(
                "a custom ResiliencePolicy is not JSON-expressible; "
                "pass resilience=True for the default policy"
            )
        if isinstance(self.cache, (bool, type(None))):
            cache: Any = bool(self.cache)
        elif isinstance(self.cache, str):
            cache = self.cache
        else:
            raise OptionsError(
                "a live cache object is not JSON-expressible; "
                "pass True, False, or a directory path"
            )
        return {
            "workers": self.workers,
            "shards": self.shards,
            "faults": faults,
            "resilience": resilience,
            "netsim": netsim,
            "uplink": uplink,
            "cache": cache,
            "backend": self.backend,
            "with_filtering": self.with_filtering,
        }

    def canonical(self) -> dict:
        """The execution-identity encoding service dedup keys hash.

        Drops ``workers`` and ``cache``: the determinism contract makes
        output bytes a pure function of ``(seed, scale, plan, shards)``
        — never of how many processes ran them or whether analyses were
        cached — so submissions differing only there share one result.
        Because both are dropped, a live cache object (which
        :meth:`to_json` rejects) is fine here.
        """
        payload = replace(self, cache=True).to_json()
        del payload["workers"]
        del payload["cache"]
        return payload

    def canonical_json(self) -> str:
        return json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )

    # -- resolution ------------------------------------------------------------

    def fault_plan(self, world) -> FaultPlan | None:
        """Resolve ``faults`` against a built world.

        Preset names scope to the world's third-party hosts exactly
        like the CLI always did; a prebuilt plan passes through.
        """
        if isinstance(self.faults, FaultPlan):
            return self.faults
        # Imported lazily: the simulation layer builds on repro.core.
        from repro.simulation.study import fault_plan_for_world

        return fault_plan_for_world(world, self.faults)

    def resolve_cache(self):
        """The :class:`~repro.cache.AnalysisCache` (or ``None``) to use."""
        from repro.cache import AnalysisCache, default_cache

        if self.cache is True:
            return default_cache()
        if self.cache is False or self.cache is None:
            return None
        if isinstance(self.cache, (str, os.PathLike)):
            return AnalysisCache(directory=self.cache)
        return self.cache

    def resolved_netsim(self) -> str | NetSimConfig:
        """``netsim`` with the uplink preset attached, ready to run.

        With the uplink off this returns ``self.netsim`` untouched —
        string or config, the exact object the off path always got, so
        every uplink-off byte stays identical.  With an uplink, the
        netsim preset resolves to its config and carries the uplink.
        """
        uplink = self.uplink
        if isinstance(uplink, str):
            if uplink == "off":
                return self.netsim
            uplink = UplinkConfig.preset(uplink)
        netsim = self.netsim
        if isinstance(netsim, str):
            netsim = NetSimConfig.preset(netsim)
        return netsim.with_uplink(uplink)

    def run_kwargs(self) -> dict:
        """Keywords for :func:`~repro.simulation.study.run_study` —
        everything but ``faults`` (which needs the world first)."""
        return {
            "resilience": self.resilience,
            "netsim": self.resolved_netsim(),
            "workers": self.workers,
            "shards": self.shards,
            "backend": self.backend,
            "with_filtering": self.with_filtering,
        }


def resolve_options(options=None, **overrides) -> ExecutionOptions:
    """The single keyword-coercion helper behind every entry point.

    ``overrides`` are the classic keyword arguments with :data:`UNSET`
    defaults; passing both an ``options=`` value and an explicit knob
    is ambiguous and raises.  ``options`` accepts a prebuilt
    :class:`ExecutionOptions` or a JSON-style dict.
    """
    given = {
        key: value for key, value in overrides.items() if value is not UNSET
    }
    if options is not None:
        if given:
            raise TypeError(
                "pass execution knobs either via options= or as keywords, "
                f"not both (got options= plus {sorted(given)})"
            )
        if isinstance(options, ExecutionOptions):
            return options
        if isinstance(options, dict):
            return ExecutionOptions.from_json(options)
        raise TypeError(
            f"options must be ExecutionOptions or a dict, "
            f"got {type(options).__name__}"
        )
    return ExecutionOptions(**given)
