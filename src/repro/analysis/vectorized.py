"""Shared memoized column-scan machinery for vectorized passes.

The columnar backend interns every string and body once
(:mod:`repro.core.columnar`), so a detector that is a pure function of
a URL, content type, or response body needs evaluating once per
*distinct interned value*, not once per flow.  The helpers here wrap a
:class:`~repro.core.columnar.ColumnView` with exactly that memoization;
the ported passes (parties, tracking, cookies, cookiesync, leakage,
channels) compose them into whole-column scans that replicate the
object-path semantics verdict-for-verdict.

All memos live on instances created per pass invocation — never at
module level — so scans stay safe under the audit linter's
module-memo rule and under process pools.
"""

from __future__ import annotations

from repro.analysis.fingerprinting import FINGERPRINT_API_MARKERS
from repro.analysis.pixels import PIXEL_SIZE_THRESHOLD
from repro.core.columnar import ColumnView, FlowTable

#: Sentinel distinguishing "not computed" from a computed falsy value.
_MISS = object()

#: Mirror of :attr:`repro.net.http.HttpResponse.is_javascript`'s types.
_JAVASCRIPT_TYPES = (
    "application/javascript",
    "text/javascript",
    "application/x-javascript",
)


class UrlMemo:
    """Evaluate a pure function of the URL string once per distinct URL.

    Callable with an interned url id; returns ``fn(url_string)``.
    """

    __slots__ = ("_strings", "_fn", "_memo")

    def __init__(self, view: ColumnView, fn) -> None:
        self._strings = view.strings.values
        self._fn = fn
        self._memo: dict = {}

    def __call__(self, url_id: int):
        result = self._memo.get(url_id, _MISS)
        if result is _MISS:
            result = self._memo[url_id] = self._fn(self._strings[url_id])
        return result


class FlowScanner:
    """The union-of-detectors tracking predicate over flow columns.

    Replicates :class:`repro.analysis.tracking.TrackingClassifier`
    (filter-list hit ∨ tracking pixel ∨ fingerprint-related) with each
    expensive leg memoized by interned id: filter-list verdicts per
    URL, image/JS verdicts per content type, fingerprint body scans
    per distinct response blob.
    """

    __slots__ = (
        "suite",
        "_strings",
        "_blobs",
        "_flagged",
        "_image_ct",
        "_js_ct",
        "_fp_blob",
        "_fp_url",
    )

    def __init__(self, view: ColumnView, suite) -> None:
        self.suite = suite
        self._strings = view.strings.values
        self._blobs = view.blobs.blobs
        self._flagged: dict[int, bool] = {}
        self._image_ct: dict[int, bool] = {}
        self._js_ct: dict[int, bool] = {}
        self._fp_blob: dict[int, bool] = {}
        self._fp_url: dict[int, bool] = {}

    def flagged(self, table: FlowTable, row: int) -> bool:
        """Filter-list verdict; host is a pure function of the URL, so
        the memo keys on the url id alone."""
        url_id = table.url[row]
        verdict = self._flagged.get(url_id, _MISS)
        if verdict is _MISS:
            verdict = self._flagged[url_id] = self.suite.flags_url(
                self._strings[url_id], self._strings[table.host[row]]
            )
        return verdict

    def is_image_type(self, ct_id: int) -> bool:
        verdict = self._image_ct.get(ct_id, _MISS)
        if verdict is _MISS:
            verdict = self._image_ct[ct_id] = self._strings[ct_id].startswith(
                "image/"
            )
        return verdict

    def is_javascript_type(self, ct_id: int) -> bool:
        verdict = self._js_ct.get(ct_id, _MISS)
        if verdict is _MISS:
            verdict = self._js_ct[ct_id] = (
                self._strings[ct_id] in _JAVASCRIPT_TYPES
            )
        return verdict

    def is_pixel(self, table: FlowTable, row: int) -> bool:
        """The §V-D1 three-condition pixel heuristic."""
        return (
            self.is_image_type(table.content_type[row])
            and table.size[row] < PIXEL_SIZE_THRESHOLD
            and table.status[row] == 200
        )

    def is_fingerprinting_script(self, table: FlowTable, row: int) -> bool:
        if not self.is_javascript_type(table.content_type[row]):
            return False
        blob_id = table.resp_body[row]
        verdict = self._fp_blob.get(blob_id, _MISS)
        if verdict is _MISS:
            body = self._blobs[blob_id].decode("utf-8", errors="replace")
            verdict = self._fp_blob[blob_id] = any(
                marker in body for marker in FINGERPRINT_API_MARKERS
            )
        return verdict

    def is_fingerprint_related(self, table: FlowTable, row: int) -> bool:
        if self.is_fingerprinting_script(table, row):
            return True
        url_id = table.url[row]
        verdict = self._fp_url.get(url_id, _MISS)
        if verdict is _MISS:
            url = self._strings[url_id]
            verdict = self._fp_url[url_id] = (
                "fp=" in url and "/collect" in url
            )
        return verdict

    def is_tracking(self, table: FlowTable, row: int) -> bool:
        return (
            self.flagged(table, row)
            or self.is_pixel(table, row)
            or self.is_fingerprint_related(table, row)
        )


class HeaderProbe:
    """Truthiness of the *first* header with a given name on a row.

    Mirrors ``flow.request.headers.get(name)`` being truthy: find the
    first case-insensitive name match and test that value only.  Name
    comparisons and value truthiness memoize per interned id.
    """

    __slots__ = ("_lowered", "_strings", "_name_memo", "_value_memo")

    def __init__(self, view: ColumnView, name: str) -> None:
        self._lowered = name.lower()
        self._strings = view.strings.values
        self._name_memo: dict[int, bool] = {}
        self._value_memo: dict[int, bool] = {}

    def request_has(self, table: FlowTable, row: int) -> bool:
        names = table.req_hdr_name
        values = table.req_hdr_value
        for pos in range(table.req_hdr_off[row], table.req_hdr_off[row + 1]):
            name_id = names[pos]
            matches = self._name_memo.get(name_id, _MISS)
            if matches is _MISS:
                matches = self._name_memo[name_id] = (
                    self._strings[name_id].lower() == self._lowered
                )
            if matches:
                value_id = values[pos]
                truthy = self._value_memo.get(value_id, _MISS)
                if truthy is _MISS:
                    truthy = self._value_memo[value_id] = bool(
                        self._strings[value_id]
                    )
                return truthy
        return False
