"""Tests for the deterministic fault-injection layer (repro.net.faults)."""

import random

import pytest

from repro.clock import DEFAULT_START, SimClock
from repro.net.faults import (
    ConnectionReset,
    FAULT_PRESET_NAMES,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    NxdomainFlap,
    third_party_exclusions,
)
from repro.net.http import HttpRequest, html_response
from repro.net.network import Network, RoutingError
from repro.net.server import FunctionServer

HOST = "cdn.tracker-one.com"
BODY = "<html>payload body of nontrivial length</html>"


def build_network(*hosts: str) -> Network:
    network = Network()
    for host in hosts or (HOST,):
        server = FunctionServer(host)
        server.route("/", lambda r: html_response(BODY))
        network.register(server)
    return network


def make_injector(
    *rules: FaultRule, seed: int = 5, hosts: tuple[str, ...] = (HOST,)
) -> FaultInjector:
    return FaultInjector(
        build_network(*hosts), FaultPlan(seed=seed, rules=rules), SimClock()
    )


def get(host: str = HOST, at: float = DEFAULT_START) -> HttpRequest:
    return HttpRequest("GET", f"http://{host}/x", timestamp=at)


class TestFaultRuleMatching:
    def test_explicit_host(self):
        rule = FaultRule(FaultKind.RESET, hosts=frozenset({HOST}))
        assert rule.matches_host(HOST, "tracker-one.com")
        assert not rule.matches_host("other.example", "example")

    def test_explicit_etld1(self):
        rule = FaultRule(FaultKind.RESET, etld1s=frozenset({"tracker-one.com"}))
        assert rule.matches_host("a.tracker-one.com", "tracker-one.com")
        assert rule.matches_host("b.tracker-one.com", "tracker-one.com")

    def test_exclusion_wins_over_everything(self):
        rule = FaultRule(
            FaultKind.RESET,
            hosts=frozenset({HOST}),
            host_fraction=1.0,
            exclude_etld1s=frozenset({"tracker-one.com"}),
        )
        assert not rule.matches_host(HOST, "tracker-one.com")

    def test_fraction_one_matches_all(self):
        rule = FaultRule(FaultKind.RESET, host_fraction=1.0)
        assert rule.matches_host("anything.example", "anything.example")

    def test_fraction_zero_matches_none(self):
        rule = FaultRule(FaultKind.RESET)
        assert not rule.matches_host(HOST, "tracker-one.com")

    def test_fraction_bucket_is_deterministic_per_etld1(self):
        rule = FaultRule(FaultKind.RESET, host_fraction=0.3)
        domains = [f"party{i}.example" for i in range(200)]
        first = [rule.matches_host(f"a.{d}", d) for d in domains]
        second = [rule.matches_host(f"b.{d}", d) for d in domains]
        # Same eTLD+1 → same bucket, regardless of subdomain.
        assert first == second
        assert 0 < sum(first) < len(domains)

    def test_fraction_bucket_varies_by_kind_and_salt(self):
        domains = [f"party{i}.example" for i in range(200)]

        def selection(rule):
            return [rule.matches_host(d, d) for d in domains]

        base = FaultRule(FaultKind.RESET, host_fraction=0.3)
        other_kind = FaultRule(FaultKind.NXDOMAIN, host_fraction=0.3)
        salted = FaultRule(FaultKind.RESET, host_fraction=0.3, salt="x")
        assert selection(base) != selection(other_kind)
        assert selection(base) != selection(salted)


class TestFaultRuleWindows:
    def test_absolute_window(self):
        rule = FaultRule(
            FaultKind.RESET, window=(DEFAULT_START + 10, DEFAULT_START + 20)
        )
        assert not rule.active_at(DEFAULT_START + 9)
        assert rule.active_at(DEFAULT_START + 10)
        assert rule.active_at(DEFAULT_START + 19)
        assert not rule.active_at(DEFAULT_START + 20)

    def test_hour_window(self):
        # DEFAULT_START is 09:00; a 10–12 window excludes it.
        rule = FaultRule(FaultKind.RESET, hours=(10.0, 12.0))
        assert not rule.active_at(DEFAULT_START)
        assert rule.active_at(DEFAULT_START + 3600)

    def test_hour_window_wrapping_midnight(self):
        # The titular 5 PM – 6 AM stretch.
        rule = FaultRule(FaultKind.RESET, hours=(17.0, 6.0))
        nine_am = DEFAULT_START  # 09:00
        assert not rule.active_at(nine_am)
        assert rule.active_at(nine_am + 9 * 3600)  # 18:00
        assert rule.active_at(nine_am + 18 * 3600)  # 03:00 next day
        assert not rule.active_at(nine_am + 22 * 3600)  # 07:00

    def test_no_window_always_active(self):
        assert FaultRule(FaultKind.RESET).active_at(0.0)


class TestFaultPlanPresets:
    def test_none_is_empty(self):
        assert FaultPlan.none().is_empty

    @pytest.mark.parametrize("name", ["light", "heavy", "chaos"])
    def test_named_presets_are_nonempty(self, name):
        plan = FaultPlan.preset(name, seed=3)
        assert not plan.is_empty
        assert plan.seed == 3

    def test_off_and_none_presets_resolve_empty(self):
        assert FaultPlan.preset("off").is_empty
        assert FaultPlan.preset("none").is_empty

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            FaultPlan.preset("catastrophic")

    def test_preset_names_cover_cli_choices(self):
        assert {"off", "light", "heavy", "chaos"} <= set(FAULT_PRESET_NAMES)

    def test_exclusions_propagate_to_every_rule(self):
        excluded = frozenset({"broadcaster.de"})
        plan = FaultPlan.heavy(seed=1, exclude_etld1s=excluded)
        assert all(rule.exclude_etld1s == excluded for rule in plan.rules)

    def test_chaos_includes_nocturnal_latency(self):
        plan = FaultPlan.chaos()
        nocturnal = [r for r in plan.rules if r.hours is not None]
        assert len(nocturnal) == 1
        assert nocturnal[0].kind is FaultKind.LATENCY
        assert nocturnal[0].hours == (17.0, 6.0)


class TestFaultInjector:
    def test_empty_plan_is_pure_passthrough(self):
        network = build_network()
        injector = FaultInjector(network, FaultPlan.none(), SimClock())
        response = injector.deliver(get())
        assert response.status == 200
        assert injector.stats.total == 0
        assert network.request_count == 1

    def test_network_surface_delegated(self):
        injector = make_injector()
        assert injector.knows_host(HOST)
        assert not injector.knows_host("nope.example")
        assert HOST in injector.hosts()
        assert injector.request_count == 0

    def test_server_error_fault(self):
        injector = make_injector(
            FaultRule(
                FaultKind.SERVER_ERROR,
                probability=1.0,
                hosts=frozenset({HOST}),
                statuses=(503,),
            )
        )
        response = injector.deliver(get())
        assert response.status == 503
        assert b"injected" in response.body
        assert injector.stats.by_kind == {"server-error": 1}
        # The origin never saw the request.
        assert injector.network.request_count == 0

    def test_reset_fault_raises(self):
        injector = make_injector(
            FaultRule(FaultKind.RESET, probability=1.0, hosts=frozenset({HOST}))
        )
        with pytest.raises(ConnectionReset):
            injector.deliver(get())

    def test_nxdomain_fault_is_a_routing_error(self):
        injector = make_injector(
            FaultRule(
                FaultKind.NXDOMAIN, probability=1.0, hosts=frozenset({HOST})
            )
        )
        with pytest.raises(NxdomainFlap):
            injector.deliver(get())
        assert issubclass(NxdomainFlap, RoutingError)

    def test_latency_fault_advances_clock_and_restamps(self):
        injector = make_injector(
            FaultRule(
                FaultKind.LATENCY,
                probability=1.0,
                hosts=frozenset({HOST}),
                latency_seconds=7.5,
            )
        )
        response = injector.deliver(get())
        assert injector.clock.now == DEFAULT_START + 7.5
        assert response.timestamp == injector.clock.now
        assert injector.stats.delay_seconds == 7.5

    def test_truncate_fault_cuts_body(self):
        injector = make_injector(
            FaultRule(
                FaultKind.TRUNCATE,
                probability=1.0,
                hosts=frozenset({HOST}),
                truncate_fraction=0.5,
            )
        )
        response = injector.deliver(get())
        full = len(BODY.encode())
        assert len(response.body) == full // 2

    def test_inactive_window_means_no_fault(self):
        injector = make_injector(
            FaultRule(
                FaultKind.RESET,
                probability=1.0,
                hosts=frozenset({HOST}),
                window=(DEFAULT_START + 100, DEFAULT_START + 200),
            )
        )
        assert injector.deliver(get()).status == 200
        assert injector.stats.total == 0

    def test_stats_record_by_etld1(self):
        injector = make_injector(
            FaultRule(
                FaultKind.SERVER_ERROR, probability=1.0, hosts=frozenset({HOST})
            )
        )
        injector.deliver(get())
        injector.deliver(get())
        assert injector.stats.by_etld1 == {"tracker-one.com": 2}
        assert injector.stats.total == 2


def _pick_bursty_host(seed: int, probability: float) -> str:
    """A host whose decision draws fire on request 0 and never after.

    Mirrors the injector's RNG derivation, so the burst test below can
    attribute every post-first fault to burst continuation alone.
    """
    for n in range(500):
        host = f"burst{n}.tracker-two.com"
        draws = [
            random.Random(f"fault:{seed}:{host}:{i}").random() for i in range(6)
        ]
        if draws[0] < probability and all(d >= probability for d in draws[1:]):
            return host
    raise AssertionError("no suitable host found")  # pragma: no cover


class TestBursts:
    def test_burst_continues_past_the_triggering_draw(self):
        seed = 5
        probability = 0.4
        host = _pick_bursty_host(seed, probability)
        injector = make_injector(
            FaultRule(
                FaultKind.SERVER_ERROR,
                probability=probability,
                hosts=frozenset({host}),
                burst_length=3,
            ),
            seed=seed,
            hosts=(host,),
        )
        statuses = [injector.deliver(get(host)).status for _ in range(6)]
        # Draw fires on request 0; requests 1-2 ride the burst; the rest
        # would not fire on their own draws.
        assert [s >= 500 for s in statuses] == [
            True, True, True, False, False, False,
        ]

    def test_burst_length_one_is_a_single_fault(self):
        seed = 5
        probability = 0.4
        host = _pick_bursty_host(seed, probability)
        injector = make_injector(
            FaultRule(
                FaultKind.SERVER_ERROR,
                probability=probability,
                hosts=frozenset({host}),
                burst_length=1,
            ),
            seed=seed,
            hosts=(host,),
        )
        statuses = [injector.deliver(get(host)).status for _ in range(4)]
        assert [s >= 500 for s in statuses] == [True, False, False, False]


class TestDeterminism:
    def test_identical_executions_produce_identical_faults(self):
        plan_rules = (
            FaultRule(
                FaultKind.SERVER_ERROR, probability=0.3, host_fraction=1.0
            ),
            FaultRule(FaultKind.LATENCY, probability=0.2, host_fraction=1.0),
        )
        hosts = tuple(f"h{i}.many-parties.com" for i in range(5))

        def run_once():
            injector = make_injector(*plan_rules, seed=11, hosts=hosts)
            outcomes = []
            for i in range(40):
                host = hosts[i % len(hosts)]
                outcomes.append(injector.deliver(get(host)).status)
            return outcomes, injector.stats.snapshot(), injector.stats.total

        assert run_once() == run_once()

    def test_different_seed_changes_history(self):
        rule = FaultRule(
            FaultKind.SERVER_ERROR, probability=0.5, host_fraction=1.0
        )

        def run_once(seed):
            injector = make_injector(rule, seed=seed)
            return [injector.deliver(get()).status for _ in range(30)]

        assert run_once(1) != run_once(2)


class TestThirdPartyExclusions:
    def test_reduces_hosts_to_registrable_domains(self):
        excluded = third_party_exclusions(
            ["hbbtv.daserste.de", "www.zdf.de", "zdf.de"]
        )
        assert excluded == frozenset({"daserste.de", "zdf.de"})
