"""Dataset overview — the generator behind Table I."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dataset import RunDataset, StudyDataset


@dataclass(frozen=True)
class DatasetOverview:
    """One Table I row."""

    run_name: str
    date_label: str
    channels: int
    http_requests: int
    https_requests: int
    https_share: float
    total_cookies: int
    first_party_cookies: int
    third_party_cookies: int
    local_storage_objects: int

    @classmethod
    def of(cls, run: RunDataset) -> "DatasetOverview":
        return cls(
            run_name=run.run_name,
            date_label=run.date_label,
            channels=len(set(run.channels_measured)),
            http_requests=run.http_request_count,
            https_requests=run.https_request_count,
            https_share=run.https_share,
            total_cookies=run.distinct_cookie_count(),
            first_party_cookies=run.first_party_cookie_count(),
            third_party_cookies=run.third_party_cookie_count(),
            local_storage_objects=len(run.storage_entries),
        )


def overview_table(dataset: StudyDataset) -> list[DatasetOverview]:
    """Build Table I: one overview row per measurement run."""
    return [DatasetOverview.of(run) for run in dataset.runs.values()]


def format_overview_table(rows: list[DatasetOverview]) -> str:
    """Render Table I as aligned text (what the benches print)."""
    header = (
        f"{'Meas. Run':<10} {'Date':<12} {'Channels':>8} {'HTTP Req.':>10} "
        f"{'HTTPS Req.':>10} {'HTTPS Share':>11} {'Cookies':>8} "
        f"{'1P':>6} {'3P':>6} {'Storage':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.run_name:<10} {row.date_label:<12} {row.channels:>8} "
            f"{row.http_requests:>10,} {row.https_requests:>10,} "
            f"{row.https_share:>10.2%} {row.total_cookies:>8} "
            f"{row.first_party_cookies:>6} {row.third_party_cookies:>6} "
            f"{row.local_storage_objects:>8}"
        )
    return "\n".join(lines)
