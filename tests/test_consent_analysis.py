"""Tests for the screenshot annotation pipeline and dark-pattern audit."""

import pytest

from repro.consent.annotate import (
    annotate_screenshots,
    channels_with_privacy_info,
    notice_persistence,
    overlay_distribution,
    pointer_prevalence,
    privacy_prevalence,
)
from repro.consent.codebook import (
    NoisyAnnotator,
    ScreenshotAnnotator,
    cohen_kappa,
)
from repro.consent.darkpatterns import audit_nudging, audit_style
from repro.consent.notices import survey_notices
from repro.hbbtv.consent import ACCEPT, STANDARD_NOTICE_STYLES
from repro.hbbtv.overlay import (
    OverlayKind,
    PrivacyContentKind,
    ScreenState,
    TV_ONLY_SCREEN,
)
from repro.tv.screenshot import Screenshot


def shot(screen, channel="ch1", run="General", ts=0.0):
    return Screenshot(
        channel_id=channel,
        channel_name=channel,
        timestamp=ts,
        screen=screen,
        run_name=run,
    )


NOTICE_SCREEN = ScreenState(
    kind=OverlayKind.PRIVACY,
    privacy_kind=PrivacyContentKind.CONSENT_NOTICE,
    notice_type_id=1,
    notice_layer=1,
    focused_button=ACCEPT,
    visible_buttons=(ACCEPT, "settings"),
    accept_highlighted=True,
)

POLICY_SCREEN = ScreenState(
    kind=OverlayKind.PRIVACY,
    privacy_kind=PrivacyContentKind.PRIVACY_POLICY,
    policy_excerpt="Datenschutzerklärung …",
)

LIBRARY_SCREEN = ScreenState(
    kind=OverlayKind.MEDIA_LIBRARY,
    has_privacy_pointer=True,
    pointer_label="Datenschutz",
)


class TestAnnotation:
    def test_reference_annotator_reads_structure(self):
        label = ScreenshotAnnotator().annotate(shot(NOTICE_SCREEN))
        assert label.overlay is OverlayKind.PRIVACY
        assert label.privacy_kind is PrivacyContentKind.CONSENT_NOTICE
        assert label.notice_type_id == 1

    def test_annotate_screenshots(self):
        annotations = annotate_screenshots(
            [shot(NOTICE_SCREEN), shot(TV_ONLY_SCREEN)]
        )
        assert [a.is_privacy for a in annotations] == [True, False]

    def test_overlay_distribution(self):
        shots = [
            shot(TV_ONLY_SCREEN, run="Red"),
            shot(LIBRARY_SCREEN, run="Red"),
            shot(NOTICE_SCREEN, run="Red"),
            shot(TV_ONLY_SCREEN, run="Blue"),
        ]
        rows = overlay_distribution(annotate_screenshots(shots))
        assert rows["Red"].count(OverlayKind.TV_ONLY) == 1
        assert rows["Red"].count(OverlayKind.MEDIA_LIBRARY) == 1
        assert rows["Red"].count(OverlayKind.PRIVACY) == 1
        assert rows["Red"].total == 3
        assert rows["Blue"].total == 1

    def test_privacy_prevalence(self):
        shots = [
            shot(NOTICE_SCREEN, channel="a", run="General"),
            shot(TV_ONLY_SCREEN, channel="a", run="General"),
            shot(TV_ONLY_SCREEN, channel="b", run="General"),
        ]
        rows = privacy_prevalence(annotate_screenshots(shots))
        row = rows["General"]
        assert row.privacy_screenshots == 1
        assert row.screenshot_share == pytest.approx(1 / 3)
        assert row.privacy_channels == 1
        assert row.channel_share == pytest.approx(1 / 2)

    def test_channels_with_privacy_info_across_runs(self):
        shots = [
            shot(NOTICE_SCREEN, channel="a", run="General"),
            shot(POLICY_SCREEN, channel="b", run="Blue"),
            shot(TV_ONLY_SCREEN, channel="c", run="Blue"),
        ]
        channels = channels_with_privacy_info(annotate_screenshots(shots))
        assert channels == {"a", "b"}

    def test_pointer_prevalence(self):
        shots = [shot(LIBRARY_SCREEN, channel="a"), shot(TV_ONLY_SCREEN, channel="b")]
        assert pointer_prevalence(annotate_screenshots(shots)) == {"a"}

    def test_persistence_policy_vs_notice(self):
        shots = (
            [shot(NOTICE_SCREEN, channel="n")] * 2
            + [shot(TV_ONLY_SCREEN, channel="n")] * 14
            + [shot(POLICY_SCREEN, channel="p")] * 14
            + [shot(TV_ONLY_SCREEN, channel="p")] * 2
        )
        persistence = notice_persistence(annotate_screenshots(shots))
        assert persistence.mean_notice_share() < persistence.mean_policy_share()


class TestNoisyAnnotatorAndKappa:
    def test_zero_error_matches_reference(self):
        annotator = NoisyAnnotator(error_rate=0.0)
        label = annotator.annotate(shot(NOTICE_SCREEN))
        assert label.overlay is OverlayKind.PRIVACY

    def test_full_error_always_confuses(self):
        annotator = NoisyAnnotator(error_rate=1.0, seed=3)
        label = annotator.annotate(shot(NOTICE_SCREEN))
        assert label.overlay is OverlayKind.OTHER

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            NoisyAnnotator(error_rate=1.5)

    def test_kappa_perfect_agreement(self):
        labels = [OverlayKind.PRIVACY, OverlayKind.TV_ONLY] * 10
        assert cohen_kappa(labels, list(labels)) == pytest.approx(1.0)

    def test_kappa_drops_with_noise(self):
        shots = [shot(NOTICE_SCREEN)] * 50 + [shot(TV_ONLY_SCREEN)] * 50
        reference = [ScreenshotAnnotator().annotate(s).overlay for s in shots]
        coder = NoisyAnnotator(error_rate=0.3, seed=1)
        noisy = [coder.annotate(s).overlay for s in shots]
        kappa = cohen_kappa(reference, noisy)
        assert 0.0 < kappa < 1.0

    def test_kappa_validation(self):
        with pytest.raises(ValueError):
            cohen_kappa([OverlayKind.TV_ONLY], [])
        with pytest.raises(ValueError):
            cohen_kappa([], [])


class TestNoticeSurvey:
    def make_annotations(self):
        shots = []
        for type_id in (1, 3, 10):
            screen = ScreenState(
                kind=OverlayKind.PRIVACY,
                privacy_kind=PrivacyContentKind.CONSENT_NOTICE,
                notice_type_id=type_id,
                notice_layer=2 if type_id == 1 else 1,
            )
            shots.append(shot(screen, channel=f"ch{type_id}", run="Blue"))
        return annotate_screenshots(shots)

    def test_distinct_styles_and_layers(self):
        survey = survey_notices(self.make_annotations())
        assert survey.distinct_styles == 3
        assert survey.deepest_layer_observed() == 2

    def test_all_observed_styles_have_accept(self):
        survey = survey_notices(self.make_annotations())
        assert survey.styles_with_first_layer_accept() == 3

    def test_blue_only_styles(self):
        survey = survey_notices(self.make_annotations())
        assert survey.blue_only_styles_seen() == {10}

    def test_policies_not_counted_as_notices(self):
        annotations = annotate_screenshots([shot(POLICY_SCREEN)])
        assert survey_notices(annotations).distinct_styles == 0


class TestDarkPatterns:
    def test_every_standard_style_nudges_focus(self):
        # The paper: for ALL 12 notice types the default focus was the
        # accept button.
        for style in STANDARD_NOTICE_STYLES.values():
            findings = audit_style(style)
            assert findings.default_focus_on_accept

    def test_qvc_has_first_layer_decline(self):
        findings = audit_style(STANDARD_NOTICE_STYLES[4])
        assert not findings.decline_hidden_from_first_layer

    def test_rtl_group_hides_decline(self):
        findings = audit_style(STANDARD_NOTICE_STYLES[1])
        assert findings.decline_hidden_from_first_layer

    def test_bibel_tv_confirmation_layer(self):
        findings = audit_style(STANDARD_NOTICE_STYLES[7])
        assert findings.deselection_needs_confirmation

    def test_audit_over_screenshots(self):
        shots = [shot(NOTICE_SCREEN)] * 3
        annotations = annotate_screenshots(shots)
        audit = audit_nudging(
            STANDARD_NOTICE_STYLES.values(), annotations, shots
        )
        assert audit.notice_screenshots == 3
        assert audit.focus_on_accept_screenshots == 3
        assert audit.focus_nudge_share == 1.0
        assert audit.styles_with_default_accept_focus() == 12
