"""Columnar backend: ingest rate, pass-scan throughput, and memory.

Converts the shared bench study to the columnar backend and compares
the vectorized analysis scans against the object path on the *same*
data (digest-checked identical first).  Three numbers persist to
``BENCH_columnar.json``:

* ``ingest_rows_per_second`` — ``to_columnar`` conversion rate;
* ``scan_speedup`` — object-path wall time over columnar wall time for
  the seven vectorized passes, resolved cold on both backends;
* ``memory_ratio`` — deep-size of the object dataset over the columnar
  dataset (the struct-of-arrays + interning win).

The acceptance floor from DESIGN.md §14 — the columnar backend must
deliver ≥2x scan throughput *or* ≥2x lower memory — is asserted here,
as is a >2x regression gate against the persisted baseline (CI restores
the previous file as an artifact).
"""

import json
import os
import sys
import time
from pathlib import Path

from benchmarks.conftest import SEED, emit
from repro.analysis.passes import PassContext, resolve_passes
from repro.core.columnar import columnar_sizeof, to_columnar

#: Where the numbers persist (and where the regression baseline lives).
RESULT_PATH = Path(
    os.environ.get("REPRO_COLUMNAR_BENCH_PATH", "BENCH_columnar.json")
)
#: Fail when columnar scan throughput drops below baseline / factor.
REGRESSION_FACTOR = 2.0

#: The passes with vectorized columnar implementations.
PASSES = [
    "parties",
    "tracking",
    "cookies",
    "cookiesync",
    "leakage",
    "channels",
    "overview",
]

#: The acceptance floor: ≥2x faster scans or ≥2x smaller memory.
ADVANTAGE_FLOOR = 2.0


def _row_count(dataset) -> int:
    return sum(
        len(run.flows)
        + len(run.cookie_records)
        + len(run.jar_dump)
        + len(run.storage_entries)
        + len(run.screenshots)
        for run in dataset.runs.values()
    )


def _deep_sizeof(obj, seen: set) -> int:
    """Approximate deep size of an object graph (shared nodes once)."""
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += _deep_sizeof(key, seen) + _deep_sizeof(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += _deep_sizeof(item, seen)
    elif hasattr(obj, "__dict__"):
        size += _deep_sizeof(obj.__dict__, seen)
    return size


def test_columnar_backend_throughput(benchmark, study, dataset):
    ctx = PassContext.for_study(study)
    rows = _row_count(dataset)

    # Ingest: object rows → columns (timed as the benchmark body).
    started = time.perf_counter()
    columnar = benchmark.pedantic(
        to_columnar, args=(dataset,), rounds=1, iterations=1
    )
    ingest_wall = time.perf_counter() - started
    assert columnar.digest() == dataset.digest()

    # Warm shared module state (filter lists, eTLD tables) so neither
    # timed scan pays one-time setup.
    resolve_passes(PASSES, dataset, ctx, cache=None)

    started = time.perf_counter()
    object_results = resolve_passes(PASSES, dataset, ctx, cache=None)
    object_wall = time.perf_counter() - started

    started = time.perf_counter()
    columnar_results = resolve_passes(PASSES, columnar, ctx, cache=None)
    columnar_wall = time.perf_counter() - started

    assert set(object_results) == set(columnar_results)

    object_bytes = _deep_sizeof(dataset, set())
    columnar_bytes = columnar_sizeof(columnar)

    ingest_rate = rows / ingest_wall if ingest_wall else 0.0
    scan_rate = rows / columnar_wall if columnar_wall else 0.0
    speedup = object_wall / columnar_wall if columnar_wall else 0.0
    memory_ratio = object_bytes / columnar_bytes if columnar_bytes else 0.0

    result = {
        "seed": SEED,
        "rows": rows,
        "ingest_rows_per_second": round(ingest_rate, 1),
        "object_scan_seconds": round(object_wall, 3),
        "columnar_scan_seconds": round(columnar_wall, 3),
        "columnar_scan_rows_per_second": round(scan_rate, 1),
        "scan_speedup": round(speedup, 2),
        "object_bytes": object_bytes,
        "columnar_bytes": columnar_bytes,
        "memory_ratio": round(memory_ratio, 2),
    }

    baseline = None
    if RESULT_PATH.exists():
        try:
            baseline = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            baseline = None
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    lines = [
        f"{rows:,} rows ingested in {ingest_wall:.2f}s "
        f"= {ingest_rate:,.0f} rows/sec",
        f"{len(PASSES)} passes: objects {object_wall:.2f}s, "
        f"columnar {columnar_wall:.2f}s = {speedup:.1f}x speedup",
        f"memory: objects {object_bytes / 1e6:,.1f} MB, "
        f"columnar {columnar_bytes / 1e6:,.1f} MB "
        f"= {memory_ratio:.1f}x smaller",
        f"persisted to {RESULT_PATH}",
    ]
    if baseline is not None:
        lines.append(
            "baseline: "
            f"{baseline.get('columnar_scan_rows_per_second', 0):,.0f} rows/sec"
        )
    emit("Columnar — backend throughput and memory", "\n".join(lines))

    assert rows > 0
    assert speedup >= ADVANTAGE_FLOOR or memory_ratio >= ADVANTAGE_FLOOR, (
        f"columnar advantage below {ADVANTAGE_FLOOR}x: "
        f"speedup {speedup:.2f}x, memory {memory_ratio:.2f}x"
    )
    if baseline is not None and baseline.get("columnar_scan_rows_per_second"):
        floor = (
            baseline["columnar_scan_rows_per_second"] / REGRESSION_FACTOR
        )
        assert scan_rate >= floor, (
            f"columnar scan throughput regressed >{REGRESSION_FACTOR}x: "
            f"{scan_rate:,.0f} rows/sec vs baseline "
            f"{baseline['columnar_scan_rows_per_second']:,.0f}"
        )
