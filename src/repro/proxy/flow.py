"""Flow records: one intercepted request/response exchange."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.net.http import HttpRequest, HttpResponse
from repro.net.url import URL


@dataclass
class Flow:
    """One HTTP(S) exchange as recorded by the interception proxy.

    Host and eTLD+1 are cached: analyses group the same flows by party
    many times over.
    """

    request: HttpRequest
    response: HttpResponse
    channel_id: str = ""
    channel_name: str = ""
    run_name: str = ""
    #: True when the exchange was TLS and we man-in-the-middled it
    #: (every HTTPS flow in the study: no channel validated certs).
    intercepted_tls: bool = False

    @property
    def url(self) -> str:
        return self.request.url

    @cached_property
    def host(self) -> str:
        return URL.parse(self.request.url).host

    @cached_property
    def etld1(self) -> str:
        return URL.parse(self.request.url).etld1

    @property
    def is_https(self) -> bool:
        return self.request.is_https

    @property
    def timestamp(self) -> float:
        return self.request.timestamp

    @property
    def status(self) -> int:
        return self.response.status

    def set_cookie_headers(self) -> list[str]:
        return self.response.set_cookie_headers()

    def with_run(self, run_name: str) -> "Flow":
        return Flow(
            request=self.request,
            response=self.response,
            channel_id=self.channel_id,
            channel_name=self.channel_name,
            run_name=run_name,
            intercepted_tls=self.intercepted_tls,
        )
