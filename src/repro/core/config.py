"""Timing and procedure constants of the measurement protocol (§IV).

Every number here is taken from the paper: 900 s of watching per
channel (910 s in the exploratory run), +100 s on color-button runs,
10 s settle time after switching, one screenshot every 60 s, ten
interaction presses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MeasurementConfig:
    """Protocol parameters shared by all measurement runs."""

    #: Base watch time per channel in the General run (seconds).
    watch_seconds: float = 900.0
    #: Extra watch time on color-button runs (10 s settle + 10 s after
    #: the button press + interaction time ≈ +100 s in the paper).
    interaction_extra_seconds: float = 100.0
    #: Exploratory watch time used by the filtering pipeline; previous
    #: work found channels can take up to 900 s to start HTTP traffic.
    exploratory_watch_seconds: float = 910.0
    #: Settle time after switching to a channel before anything else.
    settle_seconds: float = 10.0
    #: Wait after pressing the colored button.
    post_button_seconds: float = 10.0
    #: Screenshot cadence.
    screenshot_interval_seconds: float = 60.0
    #: Length of the fixed interaction sequence (cursor keys + ENTER).
    interaction_presses: int = 10
    #: Gap between interaction presses.
    interaction_gap_seconds: float = 2.0

    @property
    def color_run_watch_seconds(self) -> float:
        return self.watch_seconds + self.interaction_extra_seconds

    def planned_channel_seconds(self, interactive: bool) -> float:
        """Protocol time one channel visit is *supposed* to take.

        This is the baseline the per-channel watchdog budgets against:
        anything beyond it is retry backoff, injected latency, or a
        wedged API — the situations a resilient run must bound.
        """
        watch = (
            self.color_run_watch_seconds if interactive else self.watch_seconds
        )
        return self.settle_seconds + watch

    def expected_screenshots(self, with_button: bool) -> int:
        """16 per channel on General runs, 27 on color-button runs.

        One shot after settling, one per 60 s interval, and — on the
        color runs — one after each of the ten interaction presses
        (that is how 1000 s of watching yields 27 shots: 1 + 16 + 10).
        """
        total = self.settle_seconds + (
            self.color_run_watch_seconds if with_button else self.watch_seconds
        )
        if with_button:
            press_shots = self.interaction_presses
            # Settle + post-button wait + the interaction sequence run
            # before interval screenshots resume.
            elapsed = (
                self.settle_seconds
                + self.post_button_seconds
                + self.interaction_presses * self.interaction_gap_seconds
            )
        else:
            press_shots = 0
            elapsed = self.settle_seconds
        interval_shots = int((total - elapsed) // self.screenshot_interval_seconds)
        return 1 + press_shots + interval_shots


DEFAULT_CONFIG = MeasurementConfig()
