"""Tests for Set-Cookie parsing and cookie-jar semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.net.cookies import (
    Cookie,
    CookieJar,
    CookieParseError,
    parse_set_cookie,
)
from repro.net.url import URL

PAGE = URL.parse("https://app.channel.de/hbbtv/index.html")


class TestParseSetCookie:
    def test_minimal(self):
        cookie = parse_set_cookie("sid=abc123", PAGE)
        assert cookie.name == "sid"
        assert cookie.value == "abc123"
        assert cookie.domain == "app.channel.de"
        assert cookie.host_only
        assert cookie.path == "/hbbtv"

    def test_explicit_domain_widens(self):
        cookie = parse_set_cookie("sid=1; Domain=channel.de", PAGE)
        assert cookie.domain == "channel.de"
        assert not cookie.host_only

    def test_domain_leading_dot_stripped(self):
        cookie = parse_set_cookie("sid=1; Domain=.channel.de", PAGE)
        assert cookie.domain == "channel.de"

    def test_foreign_domain_rejected(self):
        with pytest.raises(CookieParseError):
            parse_set_cookie("sid=1; Domain=other.de", PAGE)

    def test_explicit_path(self):
        cookie = parse_set_cookie("sid=1; Path=/", PAGE)
        assert cookie.path == "/"

    def test_max_age(self):
        cookie = parse_set_cookie("sid=1; Max-Age=3600", PAGE, now=100.0)
        assert cookie.expires == 3700.0

    def test_max_age_wins_over_expires(self):
        cookie = parse_set_cookie(
            "sid=1; Expires=99999; Max-Age=10", PAGE, now=0.0
        )
        assert cookie.expires == 10.0

    def test_epoch_expires(self):
        cookie = parse_set_cookie("sid=1; Expires=1700000000", PAGE)
        assert cookie.expires == 1700000000.0

    def test_secure_and_httponly(self):
        cookie = parse_set_cookie("sid=1; Secure; HttpOnly", PAGE)
        assert cookie.secure
        assert cookie.http_only

    def test_unknown_attributes_ignored(self):
        cookie = parse_set_cookie("sid=1; SameSite=Lax; Priority=High", PAGE)
        assert cookie.name == "sid"

    def test_empty_name_rejected(self):
        with pytest.raises(CookieParseError):
            parse_set_cookie("=value", PAGE)

    def test_no_equals_rejected(self):
        with pytest.raises(CookieParseError):
            parse_set_cookie("garbage", PAGE)

    def test_records_setting_url(self):
        cookie = parse_set_cookie("sid=1", PAGE)
        assert cookie.set_by_url == str(PAGE)

    def test_etld1(self):
        cookie = parse_set_cookie("sid=1", PAGE)
        assert cookie.etld1 == "channel.de"


class TestCookieMatching:
    def test_host_only_exact_match(self):
        cookie = parse_set_cookie("a=1; Path=/", PAGE)
        assert cookie.matches(URL.parse("https://app.channel.de/other"))
        assert not cookie.matches(URL.parse("https://www.channel.de/"))

    def test_domain_cookie_matches_subdomains(self):
        cookie = parse_set_cookie("a=1; Domain=channel.de; Path=/", PAGE)
        assert cookie.matches(URL.parse("https://www.channel.de/"))
        assert cookie.matches(URL.parse("https://channel.de/"))
        assert not cookie.matches(URL.parse("https://notchannel.de/"))

    def test_secure_cookie_not_sent_on_http(self):
        cookie = parse_set_cookie("a=1; Secure; Path=/", PAGE)
        assert not cookie.matches(URL.parse("http://app.channel.de/"))

    def test_path_matching(self):
        cookie = parse_set_cookie("a=1; Path=/hbbtv", PAGE)
        assert cookie.matches(URL.parse("https://app.channel.de/hbbtv"))
        assert cookie.matches(URL.parse("https://app.channel.de/hbbtv/sub"))
        assert not cookie.matches(URL.parse("https://app.channel.de/hbbtvx"))
        assert not cookie.matches(URL.parse("https://app.channel.de/"))


class TestCookieJar:
    def test_store_and_retrieve(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/", PAGE))
        assert len(jar) == 1
        assert jar.cookie_header_for(PAGE) == "a=1"

    def test_replacement_same_key(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/", PAGE, now=1.0), now=1.0)
        jar.store(parse_set_cookie("a=2; Path=/", PAGE, now=5.0), now=5.0)
        cookies = jar.all()
        assert len(cookies) == 1
        assert cookies[0].value == "2"
        assert cookies[0].created_at == 1.0  # creation time preserved

    def test_different_paths_coexist(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/", PAGE))
        jar.store(parse_set_cookie("a=2; Path=/hbbtv", PAGE))
        assert len(jar) == 2

    def test_expired_cookie_deletes(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/; Max-Age=100", PAGE, now=0.0))
        jar.store(
            parse_set_cookie("a=gone; Path=/; Max-Age=0", PAGE, now=50.0),
            now=50.0,
        )
        assert len(jar) == 0

    def test_expired_not_returned(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/; Max-Age=10", PAGE, now=0.0))
        assert jar.cookies_for(PAGE, now=5.0)
        assert not jar.cookies_for(PAGE, now=15.0)

    def test_evict_expired(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/; Max-Age=10", PAGE, now=0.0))
        jar.store(parse_set_cookie("b=1; Path=/", PAGE, now=0.0))
        assert jar.evict_expired(now=100.0) == 1
        assert len(jar) == 1

    def test_store_from_response_skips_malformed(self):
        jar = CookieJar()
        stored = jar.store_from_response(PAGE, ["good=1; Path=/", "bad"])
        assert [c.name for c in stored] == ["good"]
        assert len(jar) == 1

    def test_header_ordering_longest_path_first(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("root=1; Path=/", PAGE, now=1.0), now=1.0)
        jar.store(
            parse_set_cookie("deep=1; Path=/hbbtv", PAGE, now=2.0), now=2.0
        )
        assert jar.cookie_header_for(PAGE) == "deep=1; root=1"

    def test_clear(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/", PAGE))
        jar.clear()
        assert len(jar) == 0


class TestExpiryBoundary:
    """RFC 6265 expiry semantics: a cookie dies when its expiry time
    *has passed*, not at the exact boundary instant."""

    def test_live_at_exact_expiry_instant(self):
        cookie = parse_set_cookie("a=1; Max-Age=100", PAGE, now=0.0)
        assert cookie.expires == 100.0
        assert not cookie.is_expired(100.0)
        assert cookie.is_expired(100.000001)

    def test_boundary_cookie_still_sent(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/; Max-Age=100", PAGE, now=0.0))
        assert jar.cookie_header_for(PAGE, now=100.0) == "a=1"
        assert jar.cookie_header_for(PAGE, now=100.5) == ""

    def test_max_age_zero_is_immediate_deletion(self):
        cookie = parse_set_cookie("a=1; Max-Age=0", PAGE, now=50.0)
        assert cookie.is_expired(50.0)

    def test_max_age_negative_is_immediate_deletion(self):
        cookie = parse_set_cookie("a=1; Max-Age=-300", PAGE, now=50.0)
        assert cookie.is_expired(50.0)
        # Not a live past-dated cookie either: it is dead at every time
        # from the moment it was set.
        assert cookie.expires is not None and cookie.expires < 50.0

    def test_max_age_zero_deletes_existing_at_same_instant(self):
        # The regression pair for the boundary fix: with `expires < now`
        # alone, a Max-Age=0 cookie stamped `expires = now` would be
        # *live* at `now` and replace instead of delete.
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/; Max-Age=100", PAGE, now=0.0))
        jar.store(
            parse_set_cookie("a=gone; Path=/; Max-Age=0", PAGE, now=0.0),
            now=0.0,
        )
        assert len(jar) == 0

    def test_evict_expired_keeps_boundary_cookie(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/; Max-Age=10", PAGE, now=0.0))
        assert jar.evict_expired(now=10.0) == 0
        assert jar.evict_expired(now=10.5) == 1


class TestAttributeEdgeCases:
    """Jar state after each Set-Cookie attribute edge case."""

    def test_non_numeric_max_age_skips_header_only(self):
        with pytest.raises(CookieParseError):
            parse_set_cookie("a=1; Max-Age=soon", PAGE)
        jar = CookieJar()
        stored = jar.store_from_response(
            PAGE, ["a=1; Path=/; Max-Age=soon", "b=2; Path=/"]
        )
        assert [c.name for c in stored] == ["b"]
        assert [c.name for c in jar.all()] == ["b"]

    def test_domain_with_leading_dot(self):
        jar = CookieJar()
        jar.store_from_response(PAGE, ["sid=1; Path=/; Domain=.channel.de"])
        (cookie,) = jar.all()
        assert cookie.domain == "channel.de"
        assert not cookie.host_only
        assert jar.cookies_for(URL.parse("https://www.channel.de/"), now=0.0)

    def test_super_domain_rejected_jar_unchanged(self):
        jar = CookieJar()
        stored = jar.store_from_response(
            PAGE, ["sid=1; Path=/; Domain=other.de"]
        )
        assert stored == []
        assert len(jar) == 0

    def test_expires_in_past_never_enters_jar(self):
        jar = CookieJar()
        jar.store_from_response(PAGE, ["a=1; Path=/; Expires=50"], now=100.0)
        assert len(jar) == 0
        assert jar.cookie_header_for(PAGE, now=100.0) == ""

    def test_expires_in_past_deletes_existing(self):
        jar = CookieJar()
        jar.store(parse_set_cookie("a=1; Path=/", PAGE, now=0.0))
        jar.store_from_response(PAGE, ["a=gone; Path=/; Expires=50"], now=100.0)
        assert len(jar) == 0


COOKIE_NAME = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
    min_size=1,
    max_size=12,
)
COOKIE_VALUE = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_.", min_size=0, max_size=30
)


class TestCookieProperties:
    @given(name=COOKIE_NAME, value=COOKIE_VALUE)
    def test_parse_preserves_name_value(self, name, value):
        cookie = parse_set_cookie(f"{name}={value}", PAGE)
        assert cookie.name == name
        assert cookie.value == value

    @given(
        pairs=st.lists(
            st.tuples(COOKIE_NAME, COOKIE_VALUE), min_size=1, max_size=10
        )
    )
    def test_jar_size_bounded_by_distinct_names(self, pairs):
        jar = CookieJar()
        for name, value in pairs:
            jar.store(parse_set_cookie(f"{name}={value}; Path=/", PAGE))
        assert len(jar) == len({name for name, _ in pairs})

    @given(max_age=st.integers(min_value=1, max_value=10_000))
    def test_cookie_alive_before_expiry_dead_after(self, max_age):
        cookie = parse_set_cookie(
            f"a=1; Max-Age={max_age}", PAGE, now=0.0
        )
        assert not cookie.is_expired(max_age - 0.5)
        assert cookie.is_expired(max_age + 0.5)
