"""Smoke tests: every example script runs end to end at a tiny scale."""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", ["0.04"]),
    ("examples/tracking_ecosystem.py", ["0.06"]),
    ("examples/consent_audit.py", ["0.06"]),
    ("examples/policy_compliance.py", ["0.06"]),
    ("examples/single_channel_session.py", []),
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=[s for s, _ in EXAMPLES])
def test_example_runs(script, args, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script] + args)
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example prints its findings


def test_replication_report_example(tmp_path, capsys, monkeypatch):
    output = str(tmp_path / "report.md")
    monkeypatch.setattr(
        sys, "argv", ["examples/replication_report.py", "0.06", output]
    )
    runpy.run_path("examples/replication_report.py", run_name="__main__")
    content = open(output, encoding="utf-8").read()
    assert content.startswith("# Replication report")
