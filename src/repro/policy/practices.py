"""Data-practice annotation of policy texts (§VII-B/C).

The rule-based stand-in for the fine-tuned BERT models: detects the
taxonomy categories/attributes/values, GDPR rights articles, legal
bases, the declared personalization time window (the 5 PM–6 AM case),
TDDDG references, opt-out wording, vague wording, HbbTV mentions, the
blue-button hint, and dedicated contact addresses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.policy.taxonomy import (
    ALL_CATEGORIES,
    DATA_SUBJECT_RIGHTS,
    TaxonomyValue,
)

#: "von 17 Uhr bis 6 Uhr" / "im Zeitraum von 17 Uhr bis 6 Uhr"
_WINDOW_DE = re.compile(
    r"von\s+(\d{1,2})\s+uhr\s+bis\s+(\d{1,2})\s+uhr", re.IGNORECASE
)
#: "from 5 pm to 6 am"
_WINDOW_EN = re.compile(
    r"from\s+(\d{1,2})\s*(am|pm)\s+to\s+(\d{1,2})\s*(am|pm)", re.IGNORECASE
)

_EMAIL = re.compile(r"[\w.+-]+@[\w-]+(?:\.[\w-]+)+")

_VAGUE_PHRASES = (
    "gegebenenfalls",
    "möglicherweise",
    "erforderlich erscheinen mag",
    "unter umständen",
    "as appropriate",
    "may be necessary",
)

_OPT_OUT_PHRASES = (
    "opt-out",
    "opt out",
    "widersprechen; bis dahin",
    "durch opt-out widersprechen",
)


@dataclass
class PracticeAnnotation:
    """Everything the annotator extracts from one policy text."""

    first_party_collection: bool = False
    third_party_collection: bool = False
    detected_values: set[str] = field(default_factory=set)
    rights_articles: set[int] = field(default_factory=set)
    legal_bases: set[str] = field(default_factory=set)
    declared_window: tuple[int, int] | None = None
    tdddg_mention: bool = False
    opt_out_statements: bool = False
    vague_statements: bool = False
    mentions_hbbtv: bool = False
    blue_button_hint: bool = False
    contact_emails: tuple[str, ...] = ()
    ip_anonymization: str = "none"  # "full", "truncate", "none"
    mentions_coverage_analysis: bool = False
    mentions_personalization_of_program: bool = False

    @property
    def uses_legitimate_interest(self) -> bool:
        return "LegitimateInterest" in self.legal_bases


def _value_matches(value: TaxonomyValue, lowered: str) -> bool:
    phrases = value.phrases_de + value.phrases_en
    return any(phrase in lowered for phrase in phrases)


def annotate_practices(text: str) -> PracticeAnnotation:
    """Annotate one policy text."""
    annotation = PracticeAnnotation()
    lowered = text.lower()

    for category in ALL_CATEGORIES:
        category_hit = False
        recipient_hit = False
        for attribute in category.attributes:
            for value in attribute.values:
                if _value_matches(value, lowered):
                    annotation.detected_values.add(value.name)
                    category_hit = True
                    if attribute.name == "LegalBasis":
                        annotation.legal_bases.add(value.name)
                    if attribute.name == "Recipient":
                        recipient_hit = True
        if category.name == "FirstPartyCollectionUse" and category_hit:
            annotation.first_party_collection = True
        if category.name == "ThirdPartySharingCollection" and recipient_hit:
            # Purpose phrases alone (e.g. first-party audience
            # measurement) do not make a third-party declaration; a
            # recipient must be named.
            annotation.third_party_collection = True

    for article, value in DATA_SUBJECT_RIGHTS.items():
        if _value_matches(value, lowered):
            annotation.rights_articles.add(article)

    annotation.declared_window = _detect_window(lowered)
    annotation.tdddg_mention = "tdddg" in lowered or "ttdsg" in lowered
    annotation.opt_out_statements = any(
        phrase in lowered for phrase in _OPT_OUT_PHRASES
    )
    annotation.vague_statements = (
        sum(1 for phrase in _VAGUE_PHRASES if phrase in lowered) >= 2
    )
    annotation.mentions_hbbtv = "hbbtv" in lowered
    annotation.blue_button_hint = (
        "blaue taste" in lowered or "blue button" in lowered
    )
    annotation.contact_emails = tuple(sorted(set(_EMAIL.findall(text))))
    if "vollständig anonymisiert" in lowered or "fully anonymized" in lowered:
        annotation.ip_anonymization = "full"
    elif "gekürzt" in lowered or "truncated" in lowered:
        annotation.ip_anonymization = "truncate"
    annotation.mentions_coverage_analysis = (
        "reichweitenmessung" in lowered or "audience measurement" in lowered
    )
    annotation.mentions_personalization_of_program = (
        "individuelle sehverhalten" in lowered
        or "individuelles sehverhalten" in lowered
    )
    return annotation


def _detect_window(lowered: str) -> tuple[int, int] | None:
    match = _WINDOW_DE.search(lowered)
    if match:
        return int(match.group(1)), int(match.group(2))
    match = _WINDOW_EN.search(lowered)
    if match:
        start = _to_24h(int(match.group(1)), match.group(2))
        end = _to_24h(int(match.group(3)), match.group(4))
        return start, end
    return None


def _to_24h(hour: int, meridiem: str) -> int:
    hour = hour % 12
    if meridiem.lower() == "pm":
        hour += 12
    return hour
