"""Time-of-day tracking analysis — the paper's titular lens.

"Privacy from 5 PM to 6 AM": the headline finding is a children's
channel family whose policy confines personalization to the evening and
night while its trackers fire around the clock.  This module provides
the hour-of-day machinery behind that check: per-hour tracking
histograms per channel, coverage of a declared window, and the share of
tracking falling outside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.tracking import TrackingClassifier
from repro.clock import hour_of_day
from repro.proxy.flow import Flow


@dataclass
class HourlyHistogram:
    """Tracking requests per hour of day (0–23) for one channel."""

    channel_id: str
    counts: list[int] = field(default_factory=lambda: [0] * 24)

    @property
    def total(self) -> int:
        return sum(self.counts)

    def add(self, hour: float) -> None:
        self.counts[int(hour) % 24] += 1

    def inside_window(self, window: tuple[int, int]) -> int:
        """Requests inside a [start, end) window (may wrap midnight).

        ``start == end`` is the degenerate "at all times" window and
        covers every hour, matching ``_inside_window`` in
        :mod:`repro.policy.discrepancy`.
        """
        start, end = window
        if start == end:
            return self.total
        hours = (
            range(start, end)
            if start < end
            else list(range(start, 24)) + list(range(0, end))
        )
        return sum(self.counts[hour % 24] for hour in hours)

    def outside_window(self, window: tuple[int, int]) -> int:
        return self.total - self.inside_window(window)

    def outside_share(self, window: tuple[int, int]) -> float:
        if self.total == 0:
            return 0.0
        return self.outside_window(window) / self.total

    def active_hours(self) -> int:
        """Hours of the day with at least one tracking request."""
        return sum(1 for count in self.counts if count > 0)

    def sparkline(self) -> str:
        """Compact per-hour activity strip (one glyph per hour)."""
        peak = max(self.counts) or 1
        glyphs = " ▁▂▃▄▅▆▇█"
        return "".join(
            glyphs[min(8, round(8 * count / peak))] for count in self.counts
        )


def hourly_tracking_histograms(
    flows: Iterable[Flow],
    classifier: TrackingClassifier | None = None,
) -> dict[str, HourlyHistogram]:
    """Per-channel hour-of-day histograms over tracking flows."""
    classifier = classifier or TrackingClassifier()
    histograms: dict[str, HourlyHistogram] = {}
    for flow in flows:
        if not flow.channel_id or not classifier.is_tracking(flow):
            continue
        histogram = histograms.setdefault(
            flow.channel_id, HourlyHistogram(flow.channel_id)
        )
        histogram.add(hour_of_day(flow.timestamp))
    return histograms


@dataclass(frozen=True)
class WindowComplianceResult:
    """One channel's tracking vs its declared window."""

    channel_id: str
    window: tuple[int, int]
    inside: int
    outside: int

    @property
    def total(self) -> int:
        return self.inside + self.outside

    @property
    def compliant(self) -> bool:
        return self.outside == 0

    @property
    def outside_share(self) -> float:
        if self.total == 0:
            return 0.0
        return self.outside / self.total


def window_compliance(
    histograms: dict[str, HourlyHistogram],
    declared_windows: dict[str, tuple[int, int]],
) -> list[WindowComplianceResult]:
    """Check every channel with a declared window against its histogram."""
    results = []
    for channel_id, window in declared_windows.items():
        histogram = histograms.get(channel_id)
        if histogram is None:
            continue
        inside = histogram.inside_window(window)
        results.append(
            WindowComplianceResult(
                channel_id=channel_id,
                window=window,
                inside=inside,
                outside=histogram.total - inside,
            )
        )
    return results
