"""Integration tests: TV + proxy + HbbTV runtime on the mini test world."""

import pytest

from repro.hbbtv.overlay import OverlayKind, PrivacyContentKind
from repro.keys import Key
from tests.helpers import ENTRY_URL, FIRST_PARTY, POLICY_URL, TestWorld


@pytest.fixture()
def world():
    return TestWorld()


def flows_to(world, etld1):
    return [f for f in world.proxy.flows if f.etld1 == etld1]


class TestAppStart:
    def test_entry_document_fetched(self, world):
        world.tune_in()
        assert any(f.url == ENTRY_URL for f in world.proxy.flows)

    def test_oneshot_services_fired(self, world):
        world.tune_in()
        hosts = {f.host for f in world.proxy.flows}
        assert "fp.devicemetrics.io" in hosts  # fingerprint script+collect
        assert "static.tvcdn.net" in hosts  # static CDN library
        assert "sync.adsync.net" in hosts  # sync initiator

    def test_sync_redirect_chain_recorded(self, world):
        world.tune_in()
        # The redirect hop to the partner must be its own flow, carrying
        # the initiator's uid in the query string.
        partner_flows = flows_to(world, "dspartner.com")
        assert partner_flows
        assert "partner_uid=" in partner_flows[0].url

    def test_consent_notice_up_after_start(self, world):
        world.tune_in()
        state = world.tv.screen_state()
        assert state.kind is OverlayKind.PRIVACY
        assert state.privacy_kind is PrivacyContentKind.CONSENT_NOTICE

    def test_storage_written(self, world):
        world.tune_in()
        entries = world.tv.browser.local_storage.all()
        assert any(e.key == "playerState" for e in entries)

    def test_channel_attribution(self, world):
        world.tune_in()
        attributed = [f for f in world.proxy.flows if f.channel_id]
        assert attributed
        assert all(f.channel_id == "beispiel-tv" for f in attributed)


class TestBeacons:
    def dismiss_notice(self, world):
        # Playback beacons are suppressed while the consent notice is
        # up; accept it so the player starts reporting.
        from repro.keys import Key

        world.tv.press(Key.ENTER)

    def test_pixels_fire_periodically(self, world):
        world.tune_in()
        self.dismiss_notice(world)
        before = len(flows_to(world, "tvping.com"))
        world.tv.wait(300)
        after = len(flows_to(world, "tvping.com"))
        # 30 s period over 300 s => 10 beacons.
        assert after - before == 10

    def test_pixels_suppressed_while_notice_up(self, world):
        world.tune_in()  # notice stays up, nobody presses anything
        world.tv.wait(300)
        assert flows_to(world, "tvping.com") == []

    def test_beacon_timestamps_spaced_by_period(self, world):
        world.tune_in()
        self.dismiss_notice(world)
        world.tv.wait(120)
        times = [f.timestamp for f in flows_to(world, "tvping.com")]
        assert len(times) == 4
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(d - 30.0) < 1e-6 for d in deltas)

    def test_pixel_carries_channel_session_user(self, world):
        world.tune_in()
        self.dismiss_notice(world)
        world.tv.wait(30)
        flow = flows_to(world, "tvping.com")[0]
        params = flow.request.query_params()
        assert params["c"] == "beispiel-tv"
        assert len(params["s"]) == 12
        assert len(params["u"]) == 16

    def test_device_info_leaked_on_pixel(self, world):
        world.tune_in()
        self.dismiss_notice(world)
        world.tv.wait(30)
        params = flows_to(world, "tvping.com")[0].request.query_params()
        assert params["mf"] == "LGE"
        assert params["md"] == "43UK6300LLB"

    def test_show_info_leaked_on_analytics(self, world):
        world.tune_in()
        world.tv.wait(120)
        flow = flows_to(world, "xiti.com")[0]
        params = flow.request.query_params()
        assert params["show"] == "Abendshow"
        assert params["genre"] == "talk"

    def test_pixel_response_sets_cookie_once(self, world):
        world.tune_in()
        self.dismiss_notice(world)
        world.tv.wait(120)
        uid_cookies = [
            c for c in world.tv.browser.cookie_jar.all() if c.name == "uid"
        ]
        assert len(uid_cookies) == 1

    def test_wait_advances_clock_exactly(self, world):
        world.tune_in()
        start = world.clock.now
        world.tv.wait(901)
        assert world.clock.now == start + 901


class TestButtons:
    def test_red_opens_media_library(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)  # accept notice first
        world.tv.press(Key.RED)
        assert world.tv.screen_state().kind is OverlayKind.MEDIA_LIBRARY

    def test_red_prefetches_policy(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.RED)
        assert any(f.url == POLICY_URL for f in world.proxy.flows)

    def test_red_fires_button_gated_ad_with_brand(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.RED)
        ad_flows = flows_to(world, "tvadnet.de")
        assert ad_flows
        assert ad_flows[0].request.query_params()["brand"] == "loreal"

    def test_button_gated_services_fire_once(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.RED)
        world.tv.press(Key.RED)
        assert len(flows_to(world, "tvadnet.de")) == 1

    def test_media_library_shows_privacy_pointer(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.RED)
        state = world.tv.screen_state()
        assert state.has_privacy_pointer
        assert not state.pointer_prominent

    def test_library_item_open_generates_request(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.RED)
        before = len(world.proxy.flows)
        world.tv.press(Key.ENTER)  # open focused item
        assert len(world.proxy.flows) == before + 1

    def test_pointer_opens_policy_overlay(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.RED)
        world.tv.press(Key.LEFT)  # wrap focus backwards onto the pointer
        world.tv.press(Key.ENTER)
        state = world.tv.screen_state()
        assert state.kind is OverlayKind.PRIVACY
        assert state.privacy_kind is PrivacyContentKind.PRIVACY_POLICY
        assert "Datenschutz" in state.policy_excerpt

    def test_blue_opens_hybrid_privacy_screen(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)  # dismiss autostart notice
        world.tv.press(Key.BLUE)
        state = world.tv.screen_state()
        assert state.kind is OverlayKind.PRIVACY
        assert state.privacy_kind is PrivacyContentKind.HYBRID

    def test_yellow_opens_text_page(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.YELLOW)
        state = world.tv.screen_state()
        assert state.kind is OverlayKind.OTHER
        assert state.caption == "Programm Info"

    def test_unbound_button_keeps_screen(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        world.tv.press(Key.GREEN)
        assert world.tv.screen_state().kind is OverlayKind.TV_ONLY


class TestConsentFlow:
    def test_accept_sends_consent_ping_with_timestamp_cookie(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        consent_flows = [f for f in world.proxy.flows if "/consent" in f.url]
        assert consent_flows
        consent_cookies = [
            c for c in world.tv.browser.cookie_jar.all() if c.name == "consent"
        ]
        assert len(consent_cookies) == 1
        # The cookie value is a Unix timestamp (ID heuristic excludes it).
        assert consent_cookies[0].value == str(int(world.clock.start))

    def test_notice_gone_after_accept(self, world):
        world.tune_in()
        world.tv.press(Key.ENTER)
        assert world.tv.screen_state().kind is OverlayKind.TV_ONLY


class TestChannelSwitch:
    def test_switch_stops_beacons(self, world):
        from repro.keys import Key

        world.tune_in()
        world.tv.press(Key.ENTER)  # dismiss notice, start playback
        world.tv.wait(60)
        count = len(flows_to(world, "tvping.com"))
        assert count == 2
        world.tv.tune(world.channel)  # re-tune: app restarts
        # Old beacons cleared; the fresh app shows its notice again, so
        # playback beacons stay suppressed until it is dismissed.
        world.tv.press(Key.ENTER)
        world.tv.wait(30)
        assert len(flows_to(world, "tvping.com")) == count + 1

    def test_power_off_requires_power_for_interaction(self, world):
        world.tv.power_off()
        with pytest.raises(RuntimeError):
            world.tv.press(Key.RED)

    def test_wipe_clears_state(self, world):
        world.tune_in()
        world.tv.wait(60)
        world.tv.wipe()
        assert len(world.tv.browser.cookie_jar) == 0
        assert len(world.tv.browser.local_storage) == 0


class TestProxyBehaviour:
    def test_https_flows_marked_intercepted(self, world):
        world.tune_in()
        https_flows = [f for f in world.proxy.flows if f.is_https]
        assert https_flows  # CDN assets are https in the test world
        assert all(f.intercepted_tls for f in https_flows)

    def test_dead_host_yields_504_flow(self, world):
        from repro.net.http import HttpRequest

        response = world.proxy.request(
            HttpRequest("GET", "http://dead.example.com/x", timestamp=1.0)
        )
        assert response.status == 504
        assert world.proxy.flows[-1].status == 504

    def test_lge_traffic_excluded(self, world):
        from repro.net.http import HttpRequest
        from repro.net.http import html_response
        from repro.net.server import FunctionServer

        lge = FunctionServer("snu.lge.com")
        lge.route("/", lambda r: html_response("update ok"))
        world.network.register(lge)
        world.proxy.request(HttpRequest("GET", "http://snu.lge.com/check"))
        assert not [f for f in world.proxy.flows if f.etld1 == "lge.com"]
        assert world.proxy.excluded_flow_count == 1

    def test_stopped_proxy_rejects(self, world):
        from repro.net.http import HttpRequest

        world.proxy.stop()
        with pytest.raises(RuntimeError):
            world.proxy.request(HttpRequest("GET", "http://x.de/"))

    def test_drain_flows_empties_buffer(self, world):
        world.tune_in()
        drained = world.proxy.drain_flows()
        assert drained
        assert world.proxy.flows == []
