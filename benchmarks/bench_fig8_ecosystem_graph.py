"""Figure 8 — the HbbTV ecosystem graph.

Paper: one connected component (429 nodes, 675 edges), average path
length 2.91; the hubs are first-party platforms of broadcaster groups
(ard.de 188, redbutton.de 103, rtl-hbbtv.de 75 edges); 18 nodes with
≥10 edges; 39 single-edge domains; the most *embedded* third party
(xiti-like) has only ~6 edges because it arrives via shared platforms,
and the dominant pixel host (tvping-like) only ~14.
"""

from benchmarks.conftest import emit
from repro.analysis.graph import analyze_graph, build_ecosystem_graph, domain_degree


def test_fig8_ecosystem_graph(benchmark, flows, first_parties):
    graph = build_ecosystem_graph(flows, first_parties)
    report = benchmark(analyze_graph, graph)

    lines = [
        f"nodes: {report.node_count} (paper: 429), edges: {report.edge_count} "
        f"(paper: 675)",
        f"connected components: {report.component_count} (paper: 1)",
        f"average path length: {report.average_path_length:.2f} (paper: 2.91)",
        f"nodes with ≥10 edges: {report.nodes_with_degree_at_least_10} "
        f"(paper: 18)",
        f"single-edge domains: {report.single_edge_domains} (paper: 39)",
        "top-degree domains (paper: ard.de 188, redbutton.de 103, "
        "rtl-hbbtv.de 75):",
    ]
    for domain, degree in report.top_degree_nodes:
        lines.append(f"  {domain:<28} {degree}")
    lines.append(
        f"xiti-like degree: {domain_degree(graph, 'xiti.com')} (paper: 6); "
        f"tvping-like degree: {domain_degree(graph, 'tvping.com')} (paper: 14)"
    )
    emit("Figure 8 — The HbbTV ecosystem graph", "\n".join(lines))

    assert report.is_single_component
    top_domains = [domain for domain, _ in report.top_degree_nodes[:4]]
    platform_hubs = {
        "ard-verbund.de",
        "rtl-interactive.de",
        "redbutton-p7.de",
        "hbbtv-suite.de",
        "tvservices.digital",
        "zdf-gruppe.de",
    }
    assert set(top_domains) & platform_hubs
    assert domain_degree(graph, "xiti.com") <= 10
    assert report.single_edge_domains >= 1
