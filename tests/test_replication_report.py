"""Tests for the one-shot replication-report generator."""

import pytest

from repro.analysis.report import generate_report
from repro.simulation.study import default_study


@pytest.fixture(scope="module")
def report():
    return generate_report(default_study(seed=7, scale=0.15))


class TestReplicationReport:
    def test_markdown_structure(self, report):
        assert report.startswith("# Replication report")
        assert report.count("## ") == 8

    def test_all_sections_present(self, report):
        for title in (
            "Table I",
            "tracking ecosystem",
            "cookies",
            "ecosystem graph",
            "consent notices",
            "privacy policies",
            "categories and children",
            "Observability — metrics snapshot",
        ):
            assert title in report

    def test_metrics_section_lists_study_and_stage_series(self, report):
        assert "proxy.requests" in report
        assert "analysis.stage_items" in report
        assert "stage=tracking" in report

    def test_report_generation_is_idempotent(self, report):
        """Stage metrics live in a local registry: generating the report
        again must neither drift the text nor mutate study telemetry."""
        context = default_study(seed=7, scale=0.15)
        assert generate_report(context) == report

    def test_paper_references_inline(self, report):
        assert "paper:" in report
        assert "60.7%" in report  # the pixel-share reference
        assert "2,656" in report  # the policy-corpus reference

    def test_headline_case_present(self, report):
        assert "5 PM to 6 AM" in report
        assert "time-window violation" in report

    def test_table_one_rendered(self, report):
        assert "Meas. Run" in report
        assert "General" in report
