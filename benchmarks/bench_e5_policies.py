"""Experiment E5 — the privacy-policy pipeline (§VII).

Paper: 2,656 policy occurrences collected (Yellow contributes 1,193);
SHA-1 dedup yields 57 distinct texts (55 German, 1 English,
1 bilingual); SimHash finds 11 near-duplicate groups; 72% of German
policies mention "HbbTV"; rights-article coverage ranges from 16%
(Art. 20/21) to 69% (Art. 16); the headline discrepancy: a children's
channel family declares personalization only "from 5 PM to 6 AM" while
its trackers fire outside that window.
"""

import pytest

from benchmarks.conftest import emit
from repro.policy.corpus import collect_policies
from repro.policy.discrepancy import DiscrepancyKind
from repro.policy.gdpr import GdprDictionary
from repro.policy.practices import annotate_practices


@pytest.fixture(scope="module")
def corpus(flows):
    return collect_policies(flows)


def test_e5_policy_corpus(benchmark, flows, corpus):
    result = benchmark(collect_policies, flows)

    per_run = result.per_run_counts()
    lines = [
        f"policy occurrences in traffic: {len(result.documents):,} "
        "(paper: 2,656)",
        f"per run: {per_run} (paper: Yellow 1,193 ≫ Red 484 ≈ Green 479 > "
        "General 259 ≈ Blue 237)",
        f"languages: {result.per_language_counts()} "
        "(paper: 2,652 German, 3 English, 1 bilingual)",
        f"distinct after SHA-1 dedup: {result.distinct_count()} (paper: 57)",
        f"SimHash near-duplicate groups: "
        f"{len(result.near_duplicate_groups())} (paper: 11)",
        f"classifier false negatives recovered manually: "
        f"{result.manually_recovered} (paper: 18)",
    ]
    emit("E5a — Policy collection and dedup", "\n".join(lines))

    assert per_run["Yellow"] == max(per_run.values())
    assert result.distinct_count() < len(result.documents)
    assert result.near_duplicate_groups()


def test_e5_policy_content(benchmark, corpus):
    distinct = list(corpus.distinct_texts().values())

    def annotate_all():
        return [annotate_practices(document.text) for document in distinct]

    annotations = benchmark(annotate_all)

    total = len(annotations)
    hbbtv = sum(1 for a in annotations if a.mentions_hbbtv)
    blue = sum(1 for a in annotations if a.blue_button_hint)
    third = sum(1 for a in annotations if a.third_party_collection)
    legitimate = sum(1 for a in annotations if a.uses_legitimate_interest)
    dictionary = GdprDictionary()
    aware = sum(
        1 for d in distinct if dictionary.analyze(d.text).is_gdpr_aware
    )
    lines = [
        f"distinct policies analyzed: {total}",
        f"mention 'HbbTV': {hbbtv} ({hbbtv / total:.0%}; paper: 72%)",
        f"blue-button hint: {blue} (paper: 8)",
        f"declare third-party collection: {third} ({third / total:.0%}; "
        "paper: 52%)",
        f"invoke legitimate interests: {legitimate} "
        f"({legitimate / total:.0%}; paper: 18%)",
        f"GDPR-aware by dictionary: {aware} ({aware / total:.0%})",
        "rights-article coverage (paper: 15:61% 16:69% 17:60% 18:60% "
        "20:16% 21:16% 77:65%):",
    ]
    for article in (15, 16, 17, 18, 20, 21, 77):
        count = sum(1 for a in annotations if article in a.rights_articles)
        lines.append(f"  Art. {article}: {count} ({count / total:.0%})")
    emit("E5b — Data practices in privacy policies", "\n".join(lines))

    assert hbbtv / total > 0.5
    art20 = sum(1 for a in annotations if 20 in a.rights_articles)
    art15 = sum(1 for a in annotations if 15 in a.rights_articles)
    assert art20 < art15  # rare rights stay rare


def test_e5_five_pm_to_six_am(benchmark, study, resolve, corpus):
    report = benchmark(lambda: resolve("policies")["policies"].audit)

    violations = report.by_kind(DiscrepancyKind.TIME_WINDOW_VIOLATION)
    lines = [f"discrepancy findings: {len(report.findings)}"]
    for kind in DiscrepancyKind:
        lines.append(f"  {kind.name}: {len(report.by_kind(kind))}")
    for violation in violations[:3]:
        lines.append(f"\n[{violation.channel_id}] {violation.detail}")
        lines.append(f"  trackers: {', '.join(violation.tracker_etld1s)}")
        for url in violation.evidence_urls[:3]:
            lines.append(f"  evidence: {url}")
    emit("E5c — Declared vs observed: the 5 PM-6 AM case", "\n".join(lines))

    assert violations
    violating_channels = {v.channel_id for v in violations}
    assert violating_channels & study.world.children_channel_ids
    trackers = {t for v in violations for t in v.tracker_etld1s}
    assert "smartclip.net" in trackers or "tvping.com" in trackers
