"""DVB-S broadcast substrate.

Stands in for the parabolic antenna, the three satellites (Astra 1L,
Hot Bird 13E, Eutelsat 16E), and the broadcast signal itself.  A channel
carries the metadata fields the paper's filtering pipeline inspects
(radio flag, encryption, invisibility, name) plus the AIT that advertises
HbbTV application URLs inside the signal.
"""

from repro.dvb.ait import ApplicationInformationTable, AitApplication
from repro.dvb.channel import BroadcastChannel, ChannelCategory, ChannelMeta
from repro.dvb.epg import ProgrammeGuide, Show, GENRES
from repro.dvb.receiver import Antenna, ReceiverLocation
from repro.dvb.satellite import Satellite, Transponder, STANDARD_SATELLITES

__all__ = [
    "Satellite",
    "Transponder",
    "STANDARD_SATELLITES",
    "BroadcastChannel",
    "ChannelMeta",
    "ChannelCategory",
    "ApplicationInformationTable",
    "AitApplication",
    "ProgrammeGuide",
    "Show",
    "GENRES",
    "Antenna",
    "ReceiverLocation",
]
