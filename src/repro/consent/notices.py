"""Survey of observed consent-notice interfaces and brandings (§VI-B).

Cross-references the annotated screenshots with the notice-style
registry: which of the twelve brandings appeared, in which runs, with
which interaction options on the first layer, and how deep the observed
layers went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.consent.annotate import Annotation
from repro.hbbtv.consent import (
    ACCEPT,
    DECLINE,
    NoticeStyle,
    STANDARD_NOTICE_STYLES,
)
from repro.hbbtv.overlay import PrivacyContentKind


@dataclass
class ObservedNotice:
    """Aggregate observations for one notice type."""

    style: NoticeStyle
    screenshot_count: int = 0
    channels: set[str] = field(default_factory=set)
    runs: set[str] = field(default_factory=set)
    max_layer_seen: int = 0

    @property
    def first_layer_actions(self) -> tuple[str, ...]:
        return self.style.first_layer_actions()

    @property
    def offers_first_layer_decline(self) -> bool:
        return DECLINE in self.style.first_layer_actions()


@dataclass
class NoticeSurvey:
    """§VI-B aggregates across all annotated screenshots."""

    observed: dict[int, ObservedNotice] = field(default_factory=dict)

    @property
    def distinct_styles(self) -> int:
        return len(self.observed)

    def styles_with_first_layer_accept(self) -> int:
        return sum(
            1
            for notice in self.observed.values()
            if ACCEPT in notice.first_layer_actions
        )

    def styles_without_first_layer_decline(self) -> int:
        return sum(
            1
            for notice in self.observed.values()
            if not notice.offers_first_layer_decline
        )

    def blue_only_styles_seen(self) -> set[int]:
        return {
            type_id
            for type_id, notice in self.observed.items()
            if notice.style.blue_button_only
        }

    def deepest_layer_observed(self) -> int:
        if not self.observed:
            return 0
        return max(n.max_layer_seen for n in self.observed.values())


def survey_notices(annotations: Iterable[Annotation]) -> NoticeSurvey:
    """Build the notice survey from annotated screenshots."""
    survey = NoticeSurvey()
    for annotation in annotations:
        label = annotation.label
        if label.privacy_kind is not PrivacyContentKind.CONSENT_NOTICE:
            continue
        if label.notice_type_id is None:
            continue
        style = STANDARD_NOTICE_STYLES.get(label.notice_type_id)
        if style is None:
            continue
        observed = survey.observed.setdefault(
            label.notice_type_id, ObservedNotice(style)
        )
        observed.screenshot_count += 1
        observed.channels.add(annotation.channel_id)
        observed.runs.add(annotation.run_name)
        observed.max_layer_seen = max(observed.max_layer_seen, label.notice_layer)
    return survey
