"""Tests for HbbTV components not covered elsewhere: media-library
views, overlay model, app-spec helpers, keys, and notice timeouts."""

import pytest

from repro.hbbtv.app import (
    AppScreen,
    EmbeddedService,
    HbbTVApplication,
    ScreenKind,
    ServiceKind,
)
from repro.hbbtv.media_library import (
    MediaLibrary,
    MediaLibraryView,
    PrivacyPointer,
)
from repro.hbbtv.overlay import (
    NO_SIGNAL_SCREEN,
    OverlayKind,
    ScreenState,
    TV_ONLY_SCREEN,
)
from repro.keys import COLOR_KEYS, CURSOR_KEYS, INTERACTION_KEYS, Key
from repro.trackers.pixel import PixelService


class TestKeys:
    def test_color_and_cursor_partitions(self):
        assert Key.RED.is_color and not Key.RED.is_cursor
        assert Key.UP.is_cursor and not Key.UP.is_color
        assert not Key.ENTER.is_color and not Key.ENTER.is_cursor

    def test_interaction_keys_are_cursors_plus_enter(self):
        assert set(INTERACTION_KEYS) == set(CURSOR_KEYS) | {Key.ENTER}
        assert len(COLOR_KEYS) == 4


class TestOverlayModel:
    def test_privacy_predicate(self):
        assert ScreenState(kind=OverlayKind.PRIVACY).is_privacy_related()
        assert not TV_ONLY_SCREEN.is_privacy_related()
        assert not NO_SIGNAL_SCREEN.is_privacy_related()

    def test_pointer_predicate(self):
        with_pointer = ScreenState(
            kind=OverlayKind.MEDIA_LIBRARY, has_privacy_pointer=True
        )
        assert with_pointer.shows_privacy_pointer()
        assert not TV_ONLY_SCREEN.shows_privacy_pointer()

    def test_screen_state_frozen(self):
        state = ScreenState(kind=OverlayKind.TV_ONLY)
        with pytest.raises(AttributeError):
            state.kind = OverlayKind.PRIVACY


class TestMediaLibraryView:
    def make_library(self, with_pointer=True):
        return MediaLibrary(
            page_url="http://a.de/media/index.html",
            item_urls=("http://a.de/m/1", "http://a.de/m/2", "http://a.de/m/3"),
            pointer=(
                PrivacyPointer(target_policy_url="http://a.de/policy")
                if with_pointer
                else None
            ),
        )

    def test_focus_starts_on_first_item(self):
        view = MediaLibraryView(self.make_library())
        assert view.focus_index == 0
        assert not view.pointer_focused

    def test_focus_wraps_over_items_and_pointer(self):
        view = MediaLibraryView(self.make_library())
        for _ in range(3):
            view.move_focus(1)
        assert view.pointer_focused
        view.move_focus(1)
        assert view.focus_index == 0

    def test_backwards_wrap_reaches_pointer(self):
        view = MediaLibraryView(self.make_library())
        view.move_focus(-1)
        assert view.pointer_focused

    def test_activate_item_records_opening(self):
        view = MediaLibraryView(self.make_library())
        url = view.activate()
        assert url == "http://a.de/m/1"
        assert view.opened_items == [0]

    def test_activate_pointer_returns_policy(self):
        view = MediaLibraryView(self.make_library())
        view.move_focus(-1)
        assert view.activate() == "http://a.de/policy"

    def test_pointerless_library(self):
        view = MediaLibraryView(self.make_library(with_pointer=False))
        assert view.library.focusable_count() == 3
        state = view.screen_state()
        assert not state.has_privacy_pointer

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            MediaLibraryView(MediaLibrary())

    def test_screen_state_pointer_fields(self):
        library = self.make_library()
        state = MediaLibraryView(library).screen_state()
        assert state.kind is OverlayKind.MEDIA_LIBRARY
        assert state.has_privacy_pointer
        assert state.pointer_label == "Datenschutz"


class TestAppSpec:
    def make_app(self, services):
        return HbbTVApplication(
            channel_id="c",
            channel_name="C",
            entry_url="http://a.de/app/c/index.html",
            first_party_domain="a.de",
            services=services,
        )

    def test_periodic_vs_oneshot_partition(self):
        pixel_service = PixelService(name="p", domain="p.de")
        periodic = EmbeddedService(
            kind=ServiceKind.PIXEL, service=pixel_service, period_s=10.0
        )
        oneshot_pixel = EmbeddedService(
            kind=ServiceKind.PIXEL, service=pixel_service, period_s=0.0
        )
        static_poll = EmbeddedService(
            kind=ServiceKind.STATIC, url="http://a.de/epg.json", period_s=30.0
        )
        static_once = EmbeddedService(
            kind=ServiceKind.STATIC, url="http://a.de/boot.js"
        )
        app = self.make_app([periodic, oneshot_pixel, static_poll, static_once])
        assert app.periodic_services() == [periodic, static_poll]
        assert app.oneshot_services() == [oneshot_pixel, static_once]

    def test_service_domain_resolution(self):
        with_service = EmbeddedService(
            kind=ServiceKind.PIXEL, service=PixelService(name="p", domain="p.de")
        )
        with_url = EmbeddedService(
            kind=ServiceKind.STATIC, url="https://cdn.x.de/lib.js"
        )
        assert with_service.domain() == "p.de"
        assert with_url.domain() == "cdn.x.de"

    def test_screen_for_unbound_button(self):
        app = self.make_app([])
        assert app.screen_for(Key.GREEN).kind is ScreenKind.NONE


class TestNoticeTimeout:
    def test_unanswered_notice_hides_after_timeout(self):
        from tests.helpers import TestWorld

        world = TestWorld()
        world.app.notice_timeout_seconds = 75.0
        world.tune_in()
        assert world.tv.screen_state().kind is OverlayKind.PRIVACY
        world.tv.wait(74)
        assert world.tv.screen_state().kind is OverlayKind.PRIVACY
        world.tv.wait(2)
        assert world.tv.screen_state().kind is OverlayKind.TV_ONLY
        # No consent ping was sent: the viewer never answered.
        assert not [f for f in world.proxy.flows if "/consent" in f.url]

    def test_blue_reopened_notice_does_not_time_out(self):
        from tests.helpers import TestWorld

        world = TestWorld()
        world.app.notice_timeout_seconds = 75.0
        world.tune_in()
        world.tv.press(Key.ENTER)  # answer the autostart notice
        world.tv.press(Key.BLUE)  # hybrid privacy screen with controls
        world.tv.wait(300)
        assert world.tv.screen_state().kind is OverlayKind.PRIVACY

    def test_playback_beacons_resume_after_timeout(self):
        from tests.helpers import TestWorld

        world = TestWorld()
        world.app.notice_timeout_seconds = 60.0
        world.tune_in()
        world.tv.wait(300)
        beacons = [f for f in world.proxy.flows if "track.gif" in f.url]
        # Suppressed for the first 60 s, then 30 s period: (300-60)/30 = 8.
        assert len(beacons) == 8
