"""Columnar dataset backend: append-only struct-of-arrays storage.

The object backend (:mod:`repro.core.dataset`) holds every recorded
flow, cookie, storage entry, and screenshot as a Python heap object —
faithful, but at fleet scale the per-object overhead (attribute dicts,
header pair lists, duplicated strings) is the memory wall, and every
analysis pass re-walks the same objects.  This module stores the same
information as columns:

* one :class:`StringTable` per study interns every string exactly once
  (URLs, header names/values, channel ids, cookie values — measured
  datasets repeat them thousands of times over);
* one :class:`BlobStore` interns response/request bodies (a handful of
  distinct payloads serve the whole corpus);
* fixed-width facts live in stdlib :mod:`array` columns (timestamps,
  statuses, flags), variable-length ones (header lists, button labels)
  in CSR-style ``offsets`` + ``values`` column pairs.

Rows materialize lazily: :class:`ColumnarRunDataset` exposes the exact
:class:`~repro.core.dataset.RunDataset` surface (``flows``,
``cookie_records``, ``jar_dump``, …) as sequences that rebuild the
original objects on demand, so every existing consumer keeps working
unchanged.  Vectorized analysis passes skip materialization entirely
and scan columns through :class:`ColumnView`, memoizing expensive
per-URL detectors by interned id.

**Determinism contract.**  ``serialize_canonical`` produces byte-for-
byte the structure :func:`repro.core.dataset.serialize_run_dataset`
produces for the equivalent object dataset, so ``study_digest`` is
identical across backends — every golden, every cache key, and every
differential oracle carries over.  Shard merge is a column
concatenation (:func:`concat_run_parts`) under the same permutation-
invariant monoid laws as ``merge_parallel_run_datasets``: interning
order may differ between merge orders, but ids never appear in any
serialized output, only the strings they resolve to.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core.dataset import (
    CookieRecord,
    RunDataset,
    StudyDataset,
    netsim_flow_fields,
    study_digest,
)
from repro.core.resilience import ChannelFailure
from repro.net.cookies import Cookie
from repro.net.http import Headers, HttpRequest, HttpResponse
from repro.net.storage import StorageEntry
from repro.net.url import URL, URLError
from repro.proxy.flow import Flow
from repro.tv.screenshot import Screenshot

#: The dataset backends a study can run against.
BACKENDS = ("objects", "columnar")


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown dataset backend {backend!r} (expected one of {BACKENDS})"
        )
    return backend


# -- interning ---------------------------------------------------------------------


@dataclass
class StringTable:
    """Append-only string interning: each distinct string stored once.

    Ids are dense indices into ``values``; the reverse ``index`` makes
    interning O(1).  Ids are *local* to one table — they never leak
    into serialized output, which is what makes column concatenation
    (with id remapping) permutation-invariant at the byte level.
    """

    values: list[str] = field(default_factory=list)
    index: dict[str, int] = field(default_factory=dict)

    def intern(self, value: str) -> int:
        idx = self.index.get(value)
        if idx is None:
            idx = len(self.values)
            self.values.append(value)
            self.index[value] = idx
        return idx

    def value(self, idx: int) -> str:
        return self.values[idx]

    def id_of(self, value: str) -> int | None:
        """The id of an already-interned string (``None`` if absent)."""
        return self.index.get(value)

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class BlobStore:
    """Append-only bytes interning (request/response bodies)."""

    blobs: list[bytes] = field(default_factory=list)
    index: dict[bytes, int] = field(default_factory=dict)

    def intern(self, blob: bytes) -> int:
        idx = self.index.get(blob)
        if idx is None:
            idx = len(self.blobs)
            self.blobs.append(blob)
            self.index[blob] = idx
        return idx

    def value(self, idx: int) -> bytes:
        return self.blobs[idx]

    def __len__(self) -> int:
        return len(self.blobs)


@dataclass
class ColumnStore:
    """The shared interning tables of one columnar study."""

    strings: StringTable = field(default_factory=StringTable)
    blobs: BlobStore = field(default_factory=BlobStore)


def _ids() -> array:
    return array("I")


def _floats() -> array:
    return array("d")


def _flags() -> array:
    return array("B")


def _ints() -> array:
    return array("q")


def _span(offsets: array, values: array, row: int) -> memoryview | array:
    return values[offsets[row] : offsets[row + 1]]


# -- flows -------------------------------------------------------------------------


@dataclass
class FlowTable:
    """Struct-of-arrays layout of :class:`~repro.proxy.flow.Flow` rows.

    Besides the faithful wire facts, a few *derived* accelerator
    columns are computed once at append time (host/eTLD+1, normalized
    content type, body size, HTTPS flag, netsim congestion facts) so
    vectorized scans and canonical serialization never re-parse a URL
    or re-read a header.
    """

    method: array = field(default_factory=_ids)
    url: array = field(default_factory=_ids)
    req_ts: array = field(default_factory=_floats)
    req_body: array = field(default_factory=_ids)
    req_hdr_off: array = field(default_factory=lambda: array("I", [0]))
    req_hdr_name: array = field(default_factory=_ids)
    req_hdr_value: array = field(default_factory=_ids)
    status: array = field(default_factory=lambda: array("i"))
    resp_ts: array = field(default_factory=_floats)
    resp_body: array = field(default_factory=_ids)
    resp_hdr_off: array = field(default_factory=lambda: array("I", [0]))
    resp_hdr_name: array = field(default_factory=_ids)
    resp_hdr_value: array = field(default_factory=_ids)
    channel_id: array = field(default_factory=_ids)
    channel_name: array = field(default_factory=_ids)
    run_name: array = field(default_factory=_ids)
    intercepted_tls: array = field(default_factory=_flags)
    # -- derived accelerator columns -----------------------------------------
    host: array = field(default_factory=_ids)
    etld1: array = field(default_factory=_ids)
    content_type: array = field(default_factory=_ids)
    size: array = field(default_factory=_ints)
    is_https: array = field(default_factory=_flags)
    ns_delay: array = field(default_factory=_floats)
    ns_has_delay: array = field(default_factory=_flags)
    ns_depth: array = field(default_factory=_ints)
    ns_has_depth: array = field(default_factory=_flags)
    ns_shed: array = field(default_factory=_flags)
    ns_degraded: array = field(default_factory=_flags)
    ns_expired: array = field(default_factory=_flags)
    ns_uplink_delay: array = field(default_factory=_floats)
    ns_has_uplink_delay: array = field(default_factory=_flags)
    ns_uplink_depth: array = field(default_factory=_ints)
    ns_has_uplink_depth: array = field(default_factory=_flags)
    ns_uplink_shed: array = field(default_factory=_flags)

    def __len__(self) -> int:
        return len(self.url)

    def append(self, flow: Flow, store: ColumnStore) -> None:
        s = store.strings
        self.method.append(s.intern(flow.request.method))
        self.url.append(s.intern(flow.request.url))
        self.req_ts.append(flow.request.timestamp)
        self.req_body.append(store.blobs.intern(flow.request.body))
        for name, value in flow.request.headers:
            self.req_hdr_name.append(s.intern(name))
            self.req_hdr_value.append(s.intern(value))
        self.req_hdr_off.append(len(self.req_hdr_name))
        self.status.append(flow.response.status)
        self.resp_ts.append(flow.response.timestamp)
        self.resp_body.append(store.blobs.intern(flow.response.body))
        for name, value in flow.response.headers:
            self.resp_hdr_name.append(s.intern(name))
            self.resp_hdr_value.append(s.intern(value))
        self.resp_hdr_off.append(len(self.resp_hdr_name))
        self.channel_id.append(s.intern(flow.channel_id))
        self.channel_name.append(s.intern(flow.channel_name))
        self.run_name.append(s.intern(flow.run_name))
        self.intercepted_tls.append(1 if flow.intercepted_tls else 0)
        try:
            parsed = URL.parse(flow.request.url)
            host, etld1 = parsed.host, parsed.etld1
        except URLError:
            host, etld1 = "", ""
        self.host.append(s.intern(host))
        self.etld1.append(s.intern(etld1))
        self.content_type.append(s.intern(flow.response.content_type))
        self.size.append(len(flow.response.body))
        self.is_https.append(1 if flow.request.url.startswith("https://") else 0)
        netsim = netsim_flow_fields(flow) or {}
        delay = netsim.get("queue_delay")
        self.ns_delay.append(delay if delay is not None else 0.0)
        self.ns_has_delay.append(0 if delay is None else 1)
        depth = netsim.get("queue_depth")
        self.ns_depth.append(depth if depth is not None else 0)
        self.ns_has_depth.append(0 if depth is None else 1)
        self.ns_shed.append(1 if netsim.get("shed") else 0)
        self.ns_degraded.append(1 if netsim.get("degraded") else 0)
        self.ns_expired.append(1 if netsim.get("expired") else 0)
        uplink_delay = netsim.get("uplink_delay")
        self.ns_uplink_delay.append(
            uplink_delay if uplink_delay is not None else 0.0
        )
        self.ns_has_uplink_delay.append(0 if uplink_delay is None else 1)
        uplink_depth = netsim.get("uplink_depth")
        self.ns_uplink_depth.append(
            uplink_depth if uplink_depth is not None else 0
        )
        self.ns_has_uplink_depth.append(0 if uplink_depth is None else 1)
        self.ns_uplink_shed.append(1 if netsim.get("uplink_shed") else 0)

    def materialize(self, row: int, store: ColumnStore) -> Flow:
        s = store.strings
        request = HttpRequest(
            method=s.value(self.method[row]),
            url=s.value(self.url[row]),
            headers=Headers(
                (s.value(n), s.value(v))
                for n, v in zip(
                    _span(self.req_hdr_off, self.req_hdr_name, row),
                    _span(self.req_hdr_off, self.req_hdr_value, row),
                )
            ),
            body=store.blobs.value(self.req_body[row]),
            timestamp=self.req_ts[row],
        )
        response = HttpResponse(
            status=self.status[row],
            headers=Headers(
                (s.value(n), s.value(v))
                for n, v in zip(
                    _span(self.resp_hdr_off, self.resp_hdr_name, row),
                    _span(self.resp_hdr_off, self.resp_hdr_value, row),
                )
            ),
            body=store.blobs.value(self.resp_body[row]),
            timestamp=self.resp_ts[row],
        )
        flow = Flow(
            request=request,
            response=response,
            channel_id=s.value(self.channel_id[row]),
            channel_name=s.value(self.channel_name[row]),
            run_name=s.value(self.run_name[row]),
            intercepted_tls=bool(self.intercepted_tls[row]),
        )
        # Pre-seed the cached host/eTLD+1 properties from the derived
        # columns (skipped when the URL never parsed, preserving the
        # original lazy-raise behaviour).
        host = s.value(self.host[row])
        etld1 = s.value(self.etld1[row])
        if host:
            flow.__dict__["host"] = host
        if etld1:
            flow.__dict__["etld1"] = etld1
        return flow

    def header_values(
        self, row: int, lowered_name: str, store: ColumnStore, side: str = "resp"
    ) -> list[str]:
        """All values of one (case-insensitive) header on a row."""
        s = store.strings
        if side == "resp":
            offsets, names, values = (
                self.resp_hdr_off,
                self.resp_hdr_name,
                self.resp_hdr_value,
            )
        else:
            offsets, names, values = (
                self.req_hdr_off,
                self.req_hdr_name,
                self.req_hdr_value,
            )
        return [
            s.value(v)
            for n, v in zip(
                _span(offsets, names, row), _span(offsets, values, row)
            )
            if s.value(n).lower() == lowered_name
        ]

    def serialize(self, row: int, store: ColumnStore) -> dict:
        """Mirror of :func:`repro.core.dataset._serialize_flow`."""
        s = store.strings
        referer_values = self.header_values(row, "referer", store, side="req")
        record = {
            "method": s.value(self.method[row]),
            "url": s.value(self.url[row]),
            "ts": self.req_ts[row],
            "status": self.status[row],
            "content_type": s.value(self.content_type[row]),
            "size": self.size[row],
            "set_cookies": self.header_values(row, "set-cookie", store),
            "referer": referer_values[0] if referer_values else None,
            "channel_id": s.value(self.channel_id[row]),
            "channel_name": s.value(self.channel_name[row]),
            "run": s.value(self.run_name[row]),
            "https": bool(self.is_https[row]),
            "response_ts": self.resp_ts[row],
        }
        netsim: dict = {}
        if self.ns_has_delay[row]:
            netsim["queue_delay"] = self.ns_delay[row]
        if self.ns_has_depth[row]:
            netsim["queue_depth"] = self.ns_depth[row]
        if self.ns_shed[row]:
            netsim["shed"] = True
        if self.ns_degraded[row]:
            netsim["degraded"] = True
        if self.ns_expired[row]:
            netsim["expired"] = True
        if self.ns_has_uplink_delay[row]:
            netsim["uplink_delay"] = self.ns_uplink_delay[row]
        if self.ns_has_uplink_depth[row]:
            netsim["uplink_depth"] = self.ns_uplink_depth[row]
        if self.ns_uplink_shed[row]:
            netsim["uplink_shed"] = True
        if netsim:
            record["netsim"] = netsim
        return record


# -- cookies -----------------------------------------------------------------------


@dataclass
class CookieTable:
    """Columns of :class:`~repro.net.cookies.Cookie` rows (jar dumps)."""

    name: array = field(default_factory=_ids)
    value: array = field(default_factory=_ids)
    domain: array = field(default_factory=_ids)
    path: array = field(default_factory=_ids)
    expires: array = field(default_factory=_floats)
    has_expires: array = field(default_factory=_flags)
    secure: array = field(default_factory=_flags)
    http_only: array = field(default_factory=_flags)
    host_only: array = field(default_factory=_flags)
    created_at: array = field(default_factory=_floats)
    set_by_url: array = field(default_factory=_ids)
    #: Derived: the cookie domain's registrable eTLD+1.
    etld1: array = field(default_factory=_ids)

    def __len__(self) -> int:
        return len(self.name)

    def append(self, cookie: Cookie, store: ColumnStore) -> None:
        s = store.strings
        self.name.append(s.intern(cookie.name))
        self.value.append(s.intern(cookie.value))
        self.domain.append(s.intern(cookie.domain))
        self.path.append(s.intern(cookie.path))
        self.expires.append(
            cookie.expires if cookie.expires is not None else 0.0
        )
        self.has_expires.append(0 if cookie.expires is None else 1)
        self.secure.append(1 if cookie.secure else 0)
        self.http_only.append(1 if cookie.http_only else 0)
        self.host_only.append(1 if cookie.host_only else 0)
        self.created_at.append(cookie.created_at)
        self.set_by_url.append(s.intern(cookie.set_by_url))
        self.etld1.append(s.intern(cookie.etld1))

    def materialize(self, row: int, store: ColumnStore) -> Cookie:
        s = store.strings
        return Cookie(
            name=s.value(self.name[row]),
            value=s.value(self.value[row]),
            domain=s.value(self.domain[row]),
            path=s.value(self.path[row]),
            expires=self.expires[row] if self.has_expires[row] else None,
            secure=bool(self.secure[row]),
            http_only=bool(self.http_only[row]),
            host_only=bool(self.host_only[row]),
            created_at=self.created_at[row],
            set_by_url=s.value(self.set_by_url[row]),
        )

    def key(self, row: int) -> tuple[int, int, int]:
        """The (name, domain, path) identity triple, as interned ids."""
        return (self.name[row], self.domain[row], self.path[row])

    def serialize(self, row: int, store: ColumnStore) -> dict:
        """Mirror of :func:`repro.core.dataset._serialize_cookie`."""
        s = store.strings
        return {
            "name": s.value(self.name[row]),
            "value": s.value(self.value[row]),
            "domain": s.value(self.domain[row]),
            "path": s.value(self.path[row]),
            "expires": self.expires[row] if self.has_expires[row] else None,
            "secure": bool(self.secure[row]),
            "http_only": bool(self.http_only[row]),
            "host_only": bool(self.host_only[row]),
            "created_at": self.created_at[row],
            "set_by_url": s.value(self.set_by_url[row]),
        }


@dataclass
class CookieRecordTable:
    """Cookie rows plus their per-channel/run attribution."""

    cookies: CookieTable = field(default_factory=CookieTable)
    channel_id: array = field(default_factory=_ids)
    run_name: array = field(default_factory=_ids)
    first_party: array = field(default_factory=_ids)

    def __len__(self) -> int:
        return len(self.channel_id)

    def append(self, record: CookieRecord, store: ColumnStore) -> None:
        self.cookies.append(record.cookie, store)
        s = store.strings
        self.channel_id.append(s.intern(record.channel_id))
        self.run_name.append(s.intern(record.run_name))
        self.first_party.append(s.intern(record.first_party_etld1))

    def materialize(self, row: int, store: ColumnStore) -> CookieRecord:
        s = store.strings
        return CookieRecord(
            cookie=self.cookies.materialize(row, store),
            channel_id=s.value(self.channel_id[row]),
            run_name=s.value(self.run_name[row]),
            first_party_etld1=s.value(self.first_party[row]),
        )

    def is_third_party(self, row: int, empty_id: int) -> bool:
        fp = self.first_party[row]
        return fp != empty_id and self.cookies.etld1[row] != fp

    def serialize(self, row: int, store: ColumnStore) -> dict:
        s = store.strings
        return {
            "cookie": self.cookies.serialize(row, store),
            "channel_id": s.value(self.channel_id[row]),
            "run": s.value(self.run_name[row]),
            "first_party": s.value(self.first_party[row]),
        }


# -- local storage -----------------------------------------------------------------


@dataclass
class StorageTable:
    """Columns of :class:`~repro.net.storage.StorageEntry` rows."""

    origin: array = field(default_factory=_ids)
    key: array = field(default_factory=_ids)
    value: array = field(default_factory=_ids)
    written_at: array = field(default_factory=_floats)
    written_by_url: array = field(default_factory=_ids)

    def __len__(self) -> int:
        return len(self.origin)

    def append(self, entry: StorageEntry, store: ColumnStore) -> None:
        s = store.strings
        self.origin.append(s.intern(entry.origin))
        self.key.append(s.intern(entry.key))
        self.value.append(s.intern(entry.value))
        self.written_at.append(entry.written_at)
        self.written_by_url.append(s.intern(entry.written_by_url))

    def materialize(self, row: int, store: ColumnStore) -> StorageEntry:
        s = store.strings
        return StorageEntry(
            origin=s.value(self.origin[row]),
            key=s.value(self.key[row]),
            value=s.value(self.value[row]),
            written_at=self.written_at[row],
            written_by_url=s.value(self.written_by_url[row]),
        )

    def serialize(self, row: int, store: ColumnStore) -> dict:
        s = store.strings
        return {
            "origin": s.value(self.origin[row]),
            "key": s.value(self.key[row]),
            "value": s.value(self.value[row]),
            "written_at": self.written_at[row],
            "written_by_url": s.value(self.written_by_url[row]),
        }


# -- screenshots -------------------------------------------------------------------


@dataclass
class ScreenshotTable:
    """Columns of :class:`~repro.tv.screenshot.Screenshot` rows.

    Enum members are interned by their ``.value`` string and rebuilt
    through the enum constructor on materialization.
    """

    channel_id: array = field(default_factory=_ids)
    channel_name: array = field(default_factory=_ids)
    timestamp: array = field(default_factory=_floats)
    run_name: array = field(default_factory=_ids)
    sequence_number: array = field(default_factory=_ints)
    kind: array = field(default_factory=_ids)
    privacy_kind: array = field(default_factory=_ids)
    has_privacy_kind: array = field(default_factory=_flags)
    notice_type_id: array = field(default_factory=_ints)
    has_notice_type: array = field(default_factory=_flags)
    notice_layer: array = field(default_factory=_ints)
    focused_button: array = field(default_factory=_ids)
    buttons_off: array = field(default_factory=lambda: array("I", [0]))
    buttons_val: array = field(default_factory=_ids)
    preticked_off: array = field(default_factory=lambda: array("I", [0]))
    preticked_val: array = field(default_factory=_ids)
    accept_highlighted: array = field(default_factory=_flags)
    is_modal: array = field(default_factory=_flags)
    covers_full_screen: array = field(default_factory=_flags)
    policy_excerpt: array = field(default_factory=_ids)
    has_privacy_pointer: array = field(default_factory=_flags)
    pointer_label: array = field(default_factory=_ids)
    pointer_prominent: array = field(default_factory=_flags)
    caption: array = field(default_factory=_ids)

    def __len__(self) -> int:
        return len(self.channel_id)

    def append(self, shot: Screenshot, store: ColumnStore) -> None:
        s = store.strings
        screen = shot.screen
        self.channel_id.append(s.intern(shot.channel_id))
        self.channel_name.append(s.intern(shot.channel_name))
        self.timestamp.append(shot.timestamp)
        self.run_name.append(s.intern(shot.run_name))
        self.sequence_number.append(shot.sequence_number)
        self.kind.append(s.intern(screen.kind.value))
        self.privacy_kind.append(
            s.intern(
                screen.privacy_kind.value
                if screen.privacy_kind is not None
                else ""
            )
        )
        self.has_privacy_kind.append(0 if screen.privacy_kind is None else 1)
        self.notice_type_id.append(
            screen.notice_type_id if screen.notice_type_id is not None else 0
        )
        self.has_notice_type.append(0 if screen.notice_type_id is None else 1)
        self.notice_layer.append(screen.notice_layer)
        self.focused_button.append(s.intern(screen.focused_button))
        for label in screen.visible_buttons:
            self.buttons_val.append(s.intern(label))
        self.buttons_off.append(len(self.buttons_val))
        for label in screen.preticked_boxes:
            self.preticked_val.append(s.intern(label))
        self.preticked_off.append(len(self.preticked_val))
        self.accept_highlighted.append(1 if screen.accept_highlighted else 0)
        self.is_modal.append(1 if screen.is_modal else 0)
        self.covers_full_screen.append(1 if screen.covers_full_screen else 0)
        self.policy_excerpt.append(s.intern(screen.policy_excerpt))
        self.has_privacy_pointer.append(1 if screen.has_privacy_pointer else 0)
        self.pointer_label.append(s.intern(screen.pointer_label))
        self.pointer_prominent.append(1 if screen.pointer_prominent else 0)
        self.caption.append(s.intern(screen.caption))

    def materialize(self, row: int, store: ColumnStore) -> Screenshot:
        from repro.hbbtv.overlay import OverlayKind, PrivacyContentKind, ScreenState

        s = store.strings
        screen = ScreenState(
            kind=OverlayKind(s.value(self.kind[row])),
            privacy_kind=(
                PrivacyContentKind(s.value(self.privacy_kind[row]))
                if self.has_privacy_kind[row]
                else None
            ),
            notice_type_id=(
                self.notice_type_id[row] if self.has_notice_type[row] else None
            ),
            notice_layer=self.notice_layer[row],
            focused_button=s.value(self.focused_button[row]),
            visible_buttons=tuple(
                s.value(v)
                for v in _span(self.buttons_off, self.buttons_val, row)
            ),
            preticked_boxes=tuple(
                s.value(v)
                for v in _span(self.preticked_off, self.preticked_val, row)
            ),
            accept_highlighted=bool(self.accept_highlighted[row]),
            is_modal=bool(self.is_modal[row]),
            covers_full_screen=bool(self.covers_full_screen[row]),
            policy_excerpt=s.value(self.policy_excerpt[row]),
            has_privacy_pointer=bool(self.has_privacy_pointer[row]),
            pointer_label=s.value(self.pointer_label[row]),
            pointer_prominent=bool(self.pointer_prominent[row]),
            caption=s.value(self.caption[row]),
        )
        return Screenshot(
            channel_id=s.value(self.channel_id[row]),
            channel_name=s.value(self.channel_name[row]),
            timestamp=self.timestamp[row],
            screen=screen,
            run_name=s.value(self.run_name[row]),
            sequence_number=self.sequence_number[row],
        )

    def serialize(self, row: int, store: ColumnStore) -> dict:
        """Mirror of :func:`repro.core.dataset._serialize_screenshot`."""
        s = store.strings
        return {
            "channel_id": s.value(self.channel_id[row]),
            "channel_name": s.value(self.channel_name[row]),
            "ts": self.timestamp[row],
            "run": s.value(self.run_name[row]),
            "seq": self.sequence_number[row],
            "kind": s.value(self.kind[row]),
            "privacy_kind": (
                s.value(self.privacy_kind[row])
                if self.has_privacy_kind[row]
                else None
            ),
            "notice_type_id": (
                self.notice_type_id[row] if self.has_notice_type[row] else None
            ),
            "notice_layer": self.notice_layer[row],
            "focused_button": s.value(self.focused_button[row]),
            "visible_buttons": [
                s.value(v)
                for v in _span(self.buttons_off, self.buttons_val, row)
            ],
            "preticked_boxes": [
                s.value(v)
                for v in _span(self.preticked_off, self.preticked_val, row)
            ],
            "accept_highlighted": bool(self.accept_highlighted[row]),
            "is_modal": bool(self.is_modal[row]),
            "covers_full_screen": bool(self.covers_full_screen[row]),
            "policy_excerpt": s.value(self.policy_excerpt[row]),
            "has_privacy_pointer": bool(self.has_privacy_pointer[row]),
            "pointer_label": s.value(self.pointer_label[row]),
            "pointer_prominent": bool(self.pointer_prominent[row]),
            "caption": s.value(self.caption[row]),
        }


# -- lazy row views ----------------------------------------------------------------


class LazyRows(Sequence):
    """A read-only sequence materializing table rows on access.

    Rows are rebuilt fresh per access and never cached — keeping the
    columnar dataset's memory footprint flat no matter how many passes
    iterate it.
    """

    __slots__ = ("_table", "_store")

    def __init__(self, table, store: ColumnStore) -> None:
        self._table = table
        self._store = store

    def __len__(self) -> int:
        return len(self._table)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [
                self._table.materialize(row, self._store)
                for row in range(*item.indices(len(self._table)))
            ]
        if item < 0:
            item += len(self._table)
        return self._table.materialize(item, self._store)

    def __iter__(self) -> Iterator:
        for row in range(len(self._table)):
            yield self._table.materialize(row, self._store)


# -- datasets ----------------------------------------------------------------------


@dataclass
class ColumnarRunDataset:
    """Everything one measurement run collected, stored as columns.

    Duck-type compatible with :class:`~repro.core.dataset.RunDataset`:
    the ordered-collection attributes come back as :class:`LazyRows`
    sequences of the original object types.
    """

    run_name: str
    store: ColumnStore
    date_label: str = ""
    flow_table: FlowTable = field(default_factory=FlowTable)
    record_table: CookieRecordTable = field(default_factory=CookieRecordTable)
    jar_table: CookieTable = field(default_factory=CookieTable)
    storage_table: StorageTable = field(default_factory=StorageTable)
    screenshot_table: ScreenshotTable = field(default_factory=ScreenshotTable)
    channels_measured: list[str] = field(default_factory=list)
    interaction_count: int = 0
    channel_failures: list[ChannelFailure] = field(default_factory=list)
    completed: bool = True

    # -- the RunDataset surface ----------------------------------------------

    @property
    def flows(self) -> LazyRows:
        return LazyRows(self.flow_table, self.store)

    @property
    def cookie_records(self) -> LazyRows:
        return LazyRows(self.record_table, self.store)

    @property
    def jar_dump(self) -> LazyRows:
        return LazyRows(self.jar_table, self.store)

    @property
    def storage_entries(self) -> LazyRows:
        return LazyRows(self.storage_table, self.store)

    @property
    def screenshots(self) -> LazyRows:
        return LazyRows(self.screenshot_table, self.store)

    @property
    def http_request_count(self) -> int:
        return len(self.flow_table)

    @property
    def https_request_count(self) -> int:
        return sum(self.flow_table.is_https)

    @property
    def https_share(self) -> float:
        if not len(self.flow_table):
            return 0.0
        return self.https_request_count / len(self.flow_table)

    def distinct_cookie_count(self) -> int:
        table = self.record_table.cookies
        return len({table.key(row) for row in range(len(table))})

    def first_party_cookie_count(self) -> int:
        empty = _empty_id(self.store)
        table = self.record_table
        return len(
            {
                table.cookies.key(row)
                for row in range(len(table))
                if table.first_party[row] != empty
                and not table.is_third_party(row, empty)
            }
        )

    def third_party_cookie_count(self) -> int:
        empty = _empty_id(self.store)
        table = self.record_table
        return len(
            {
                table.cookies.key(row)
                for row in range(len(table))
                if table.is_third_party(row, empty)
            }
        )

    def flows_by_channel(self) -> dict[str, list[Flow]]:
        grouped: dict[str, list[Flow]] = {}
        strings = self.store.strings
        for row in range(len(self.flow_table)):
            channel = strings.value(self.flow_table.channel_id[row])
            grouped.setdefault(channel, []).append(
                self.flow_table.materialize(row, self.store)
            )
        return grouped

    def screenshots_by_channel(self) -> dict[str, list[Screenshot]]:
        grouped: dict[str, list[Screenshot]] = {}
        strings = self.store.strings
        for row in range(len(self.screenshot_table)):
            channel = strings.value(self.screenshot_table.channel_id[row])
            grouped.setdefault(channel, []).append(
                self.screenshot_table.materialize(row, self.store)
            )
        return grouped

    # -- ingest --------------------------------------------------------------

    def append_run(self, run: RunDataset) -> None:
        """Append every row of an object run (the ingest path)."""
        for flow in run.flows:
            self.flow_table.append(flow, self.store)
        for record in run.cookie_records:
            self.record_table.append(record, self.store)
        for cookie in run.jar_dump:
            self.jar_table.append(cookie, self.store)
        for entry in run.storage_entries:
            self.storage_table.append(entry, self.store)
        for shot in run.screenshots:
            self.screenshot_table.append(shot, self.store)
        self.channels_measured.extend(run.channels_measured)
        self.interaction_count += run.interaction_count
        self.channel_failures.extend(run.channel_failures)

    # -- canonical serialization ---------------------------------------------

    def serialize_canonical(self) -> dict:
        """Byte-identical mirror of ``serialize_run_dataset``."""
        store = self.store
        return {
            "run": self.run_name,
            "date": self.date_label,
            "completed": self.completed,
            "interactions": self.interaction_count,
            "channels_measured": list(self.channels_measured),
            "flows": [
                self.flow_table.serialize(row, store)
                for row in range(len(self.flow_table))
            ],
            "cookie_records": [
                self.record_table.serialize(row, store)
                for row in range(len(self.record_table))
            ],
            "jar": [
                self.jar_table.serialize(row, store)
                for row in range(len(self.jar_table))
            ],
            "storage": [
                self.storage_table.serialize(row, store)
                for row in range(len(self.storage_table))
            ],
            "screenshots": [
                self.screenshot_table.serialize(row, store)
                for row in range(len(self.screenshot_table))
            ],
            "failures": [
                {
                    "channel_id": failure.channel_id,
                    "channel_name": failure.channel_name,
                    "reason": failure.reason,
                    "attempts": failure.attempts,
                    "elapsed_seconds": failure.elapsed_seconds,
                    "at": failure.at,
                }
                for failure in self.channel_failures
            ],
        }


def _empty_id(store: ColumnStore) -> int:
    """The id of the empty string (-1 when it was never interned)."""
    idx = store.strings.id_of("")
    return idx if idx is not None else -1


@dataclass
class ColumnarStudyDataset:
    """All measurement runs of a study, on the columnar backend.

    Duck-type compatible with :class:`~repro.core.dataset.StudyDataset`
    — analyses, serialization, and digesting all work unchanged.
    """

    store: ColumnStore = field(default_factory=ColumnStore)
    runs: dict[str, ColumnarRunDataset] = field(default_factory=dict)
    _digest_cache: str | None = field(
        default=None, init=False, repr=False, compare=False
    )

    backend = "columnar"

    def add_run(self, run: RunDataset | ColumnarRunDataset) -> None:
        if run.run_name in self.runs:
            raise ValueError(f"run already recorded: {run.run_name}")
        if isinstance(run, ColumnarRunDataset):
            if run.store is not self.store:
                raise ValueError(
                    "columnar run belongs to a different store; "
                    "use concat_run_parts to rebase it"
                )
            self.runs[run.run_name] = run
        else:
            converted = ColumnarRunDataset(
                run_name=run.run_name,
                store=self.store,
                date_label=run.date_label,
                completed=run.completed,
            )
            converted.append_run(run)
            self.runs[run.run_name] = converted
        self._digest_cache = None

    def digest(self) -> str:
        if self._digest_cache is None:
            self._digest_cache = study_digest(self)
        return self._digest_cache

    def invalidate_digest(self) -> None:
        self._digest_cache = None

    def run_names(self) -> list[str]:
        return list(self.runs)

    def all_flows(self) -> Iterator[Flow]:
        for run in self.runs.values():
            yield from run.flows

    def all_cookie_records(self) -> Iterator[CookieRecord]:
        for run in self.runs.values():
            yield from run.cookie_records

    def all_screenshots(self) -> Iterator[Screenshot]:
        for run in self.runs.values():
            yield from run.screenshots

    def total_requests(self) -> int:
        return sum(r.http_request_count for r in self.runs.values())

    def channels_measured(self) -> set[str]:
        measured: set[str] = set()
        for run in self.runs.values():
            measured.update(run.channels_measured)
        return measured

    def serialize_canonical(self) -> dict:
        return {
            "runs": [run.serialize_canonical() for run in self.runs.values()],
            "run_names": self.run_names(),
        }


# -- conversion --------------------------------------------------------------------


def to_columnar(
    dataset: StudyDataset | ColumnarStudyDataset,
) -> ColumnarStudyDataset:
    """Convert an object-backed study dataset to the columnar backend.

    Already-columnar datasets pass through unchanged.  The converted
    dataset serializes (and therefore digests) byte-identically to its
    source — the contract the differential backend tests enforce.
    """
    if isinstance(dataset, ColumnarStudyDataset):
        return dataset
    columnar = ColumnarStudyDataset()
    for run in dataset.runs.values():
        columnar.add_run(run)
    return columnar


def to_objects(dataset: StudyDataset | ColumnarStudyDataset) -> StudyDataset:
    """Materialize a columnar study back into heap objects."""
    if not isinstance(dataset, ColumnarStudyDataset):
        return dataset
    objects = StudyDataset()
    for run in dataset.runs.values():
        objects.add_run(
            RunDataset(
                run_name=run.run_name,
                date_label=run.date_label,
                flows=list(run.flows),
                cookie_records=list(run.cookie_records),
                jar_dump=list(run.jar_dump),
                storage_entries=list(run.storage_entries),
                screenshots=list(run.screenshots),
                channels_measured=list(run.channels_measured),
                interaction_count=run.interaction_count,
                channel_failures=list(run.channel_failures),
                completed=run.completed,
            )
        )
    return objects


# -- shard merge as column concatenation -------------------------------------------


def _remap_table(
    part_store: ColumnStore, store: ColumnStore
) -> tuple[list[int], list[int]]:
    """Id translation maps from a part's interning to the target's."""
    strings = [store.strings.intern(v) for v in part_store.strings.values]
    blobs = [store.blobs.intern(b) for b in part_store.blobs.blobs]
    return strings, blobs


_ID_COLUMNS: dict[type, tuple[str, ...]] = {
    FlowTable: (
        "method",
        "url",
        "req_hdr_name",
        "req_hdr_value",
        "resp_hdr_name",
        "resp_hdr_value",
        "channel_id",
        "channel_name",
        "run_name",
        "host",
        "etld1",
        "content_type",
    ),
    CookieTable: ("name", "value", "domain", "path", "set_by_url", "etld1"),
    CookieRecordTable: ("channel_id", "run_name", "first_party"),
    StorageTable: ("origin", "key", "value", "written_by_url"),
    ScreenshotTable: (
        "channel_id",
        "channel_name",
        "run_name",
        "kind",
        "privacy_kind",
        "focused_button",
        "buttons_val",
        "preticked_val",
        "policy_excerpt",
        "pointer_label",
        "caption",
    ),
}

_BLOB_COLUMNS: dict[type, tuple[str, ...]] = {
    FlowTable: ("req_body", "resp_body"),
}

_OFFSET_COLUMNS: dict[type, tuple[str, ...]] = {
    FlowTable: ("req_hdr_off", "resp_hdr_off"),
    ScreenshotTable: ("buttons_off", "preticked_off"),
}


def _concat_table(target, part, string_map: list[int], blob_map: list[int]) -> None:
    """Append every row of ``part`` onto ``target``, translating ids."""
    kind = type(target)
    if kind is CookieRecordTable:
        _concat_table(target.cookies, part.cookies, string_map, blob_map)
    id_columns = _ID_COLUMNS.get(kind, ())
    blob_columns = _BLOB_COLUMNS.get(kind, ())
    offset_columns = _OFFSET_COLUMNS.get(kind, ())
    skip = set(id_columns) | set(blob_columns) | set(offset_columns)
    if kind is CookieRecordTable:
        skip.add("cookies")
    for name in id_columns:
        getattr(target, name).extend(
            string_map[idx] for idx in getattr(part, name)
        )
    for name in blob_columns:
        getattr(target, name).extend(
            blob_map[idx] for idx in getattr(part, name)
        )
    for name in offset_columns:
        column = getattr(target, name)
        base = column[-1]
        column.extend(base + offset for offset in getattr(part, name)[1:])
    for f in kind.__dataclass_fields__:
        if f in skip:
            continue
        getattr(target, f).extend(getattr(part, f))


def concat_run_parts(
    parts: Sequence[ColumnarRunDataset], store: ColumnStore
) -> ColumnarRunDataset:
    """Fold shard-level slices of the same run by column concatenation.

    The columnar equivalent of
    :func:`~repro.core.dataset.merge_parallel_run_datasets`: every
    column concatenates in the order given (callers pass shard-index
    order), part-local interned ids are translated into ``store``'s
    tables, and the merged run is completed only if every slice
    completed.  Serialized output is identical to merging the
    materialized parts — ids never reach the bytes.
    """
    if not parts:
        raise ValueError("cannot merge zero run datasets")
    names = {p.run_name for p in parts}
    if len(names) > 1:
        raise ValueError(f"cannot merge different runs: {sorted(names)}")
    merged = ColumnarRunDataset(
        run_name=parts[0].run_name,
        store=store,
        date_label=next((p.date_label for p in parts if p.date_label), ""),
        completed=all(p.completed for p in parts),
    )
    for part in parts:
        string_map, blob_map = _remap_table(part.store, store)
        _concat_table(merged.flow_table, part.flow_table, string_map, blob_map)
        _concat_table(
            merged.record_table, part.record_table, string_map, blob_map
        )
        _concat_table(merged.jar_table, part.jar_table, string_map, blob_map)
        _concat_table(
            merged.storage_table, part.storage_table, string_map, blob_map
        )
        _concat_table(
            merged.screenshot_table, part.screenshot_table, string_map, blob_map
        )
        merged.channels_measured.extend(part.channels_measured)
        merged.interaction_count += part.interaction_count
        merged.channel_failures.extend(part.channel_failures)
    return merged


def concat_study_parts(
    parts: Sequence[ColumnarStudyDataset],
) -> ColumnarStudyDataset:
    """Fold per-shard columnar studies into one, run by run.

    Run order follows first appearance across the parts in the order
    given (shard-index order from the merge layer), exactly like the
    object-path shard merge.
    """
    merged = ColumnarStudyDataset()
    run_names: list[str] = []
    for part in parts:
        for name in part.run_names():
            if name not in run_names:
                run_names.append(name)
    for name in run_names:
        slices = [p.runs[name] for p in parts if name in p.runs]
        merged.runs[name] = concat_run_parts(slices, merged.store)
    merged.invalidate_digest()
    return merged


# -- the vectorized-pass accessor --------------------------------------------------


@dataclass(frozen=True)
class ColumnView:
    """Uniform column access for vectorized analysis passes.

    ``ColumnView.of(dataset)`` returns ``None`` for object-backed
    datasets — passes fall back to their original row-at-a-time
    implementation, keeping the object path byte-for-byte untouched.
    For columnar datasets it exposes the shared string/blob tables and
    the per-run column tables in run order, which is all a vectorized
    scan needs.
    """

    dataset: ColumnarStudyDataset

    @classmethod
    def of(cls, dataset) -> "ColumnView | None":
        if isinstance(dataset, ColumnarStudyDataset):
            return cls(dataset)
        return None

    @property
    def strings(self) -> StringTable:
        return self.dataset.store.strings

    @property
    def blobs(self) -> BlobStore:
        return self.dataset.store.blobs

    @property
    def store(self) -> ColumnStore:
        return self.dataset.store

    @property
    def empty_id(self) -> int:
        return _empty_id(self.dataset.store)

    def flow_runs(self) -> list[tuple[str, FlowTable]]:
        return [
            (name, run.flow_table) for name, run in self.dataset.runs.items()
        ]

    def record_runs(self) -> list[tuple[str, CookieRecordTable]]:
        return [
            (name, run.record_table) for name, run in self.dataset.runs.items()
        ]

    def value(self, idx: int) -> str:
        return self.dataset.store.strings.value(idx)

    def blob(self, idx: int) -> bytes:
        return self.dataset.store.blobs.value(idx)


def columnar_sizeof(dataset: ColumnarStudyDataset) -> int:
    """Approximate resident bytes of a columnar study's storage."""
    import sys

    total = 0
    seen: set[int] = set()

    def add(obj) -> None:
        if id(obj) in seen:
            return
        seen.add(id(obj))
        total_ref[0] += sys.getsizeof(obj)

    total_ref = [0]
    store = dataset.store
    add(store.strings.values)
    for value in store.strings.values:
        add(value)
    add(store.strings.index)
    add(store.blobs.blobs)
    for blob in store.blobs.blobs:
        add(blob)
    add(store.blobs.index)
    for run in dataset.runs.values():
        for table in (
            run.flow_table,
            run.record_table.cookies,
            run.record_table,
            run.jar_table,
            run.storage_table,
            run.screenshot_table,
        ):
            for name in type(table).__dataclass_fields__:
                column = getattr(table, name)
                if isinstance(column, array):
                    add(column)
        add(run.channels_measured)
        for channel in run.channels_measured:
            add(channel)
    total = total_ref[0]
    return total


# -- optional pyarrow export (feature-gated) ---------------------------------------


def pyarrow_available() -> bool:
    """True when the *optional* :mod:`pyarrow` dependency is importable.

    The columnar backend is pure stdlib; pyarrow is only an export
    target.  Nothing in the package imports it at module load, so the
    backend works identically on installs without it.
    """
    try:
        import pyarrow  # noqa: F401
    except ImportError:
        return False
    return True


def to_arrow_flows(dataset: ColumnarStudyDataset):
    """Export every flow row of a study as a ``pyarrow.Table``.

    The store is already struct-of-arrays, so the export is a direct
    column handoff: numeric columns pass through, interned id columns
    decode through the string table.  Raises :class:`RuntimeError`
    when pyarrow is not installed (it is an optional dependency; see
    :func:`pyarrow_available`).
    """
    if not pyarrow_available():
        raise RuntimeError(
            "pyarrow is not installed; the columnar backend works "
            "without it — install pyarrow only for Arrow exports"
        )
    import pyarrow as pa

    strings = dataset.store.strings
    columns: dict[str, list] = {
        "run": [],
        "url": [],
        "ts": [],
        "status": [],
        "content_type": [],
        "size": [],
        "https": [],
        "channel_id": [],
        "host": [],
        "etld1": [],
    }
    for run in dataset.runs.values():
        table = run.flow_table
        for row in range(len(table)):
            columns["run"].append(strings.value(table.run_name[row]))
            columns["url"].append(strings.value(table.url[row]))
            columns["ts"].append(table.req_ts[row])
            columns["status"].append(table.status[row])
            columns["content_type"].append(
                strings.value(table.content_type[row])
            )
            columns["size"].append(table.size[row])
            columns["https"].append(bool(table.is_https[row]))
            columns["channel_id"].append(
                strings.value(table.channel_id[row])
            )
            columns["host"].append(strings.value(table.host[row]))
            columns["etld1"].append(strings.value(table.etld1[row]))
    return pa.table(columns)
