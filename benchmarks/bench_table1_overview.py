"""Table I — per-run dataset overview.

Paper: General 374 ch / 95,133 req / 0.61% HTTPS / 272 cookies;
Red 375 / 151,975 / 5.56% / 911; Green 215 / 32,138 / 7.47% / 685;
Blue 309 / 43,556 / 2.90% / 380; Yellow 381 / 134,690 / 2.29% / 554.
Shape: Red ≫ General in requests and cookies, HTTPS share < 10%
everywhere, storage roughly constant per run.
"""

from benchmarks.conftest import emit
from repro.core.report import format_overview_table, overview_table


def test_table1_overview(benchmark, dataset):
    rows = benchmark(overview_table, dataset)
    emit("Table I — Overview of the data collected per measurement run",
         format_overview_table(rows))

    by_name = {row.run_name: row for row in rows}
    assert set(by_name) == {"General", "Red", "Green", "Blue", "Yellow"}
    # Shape criteria.
    assert by_name["Red"].http_requests > by_name["General"].http_requests
    assert by_name["Red"].total_cookies > by_name["General"].total_cookies
    for row in rows:
        assert row.https_share < 0.10
        assert row.first_party_cookies <= row.total_cookies
        assert row.third_party_cookies <= row.total_cookies
